//! Monte-Carlo logical-memory experiments.
//!
//! [`MemoryExperiment`] estimates the logical error rate (LER) of a CSS code under the
//! hardware-aware noise model: the compiled execution latency of one syndrome-
//! extraction round is converted into a decoherence error (Pauli twirling), added to
//! the base circuit-level error rate, and the resulting effective per-qubit error rate
//! drives independent X/Z error sampling, BP+OSD decoding, and logical-failure
//! counting (see DESIGN.md, substitution 3). Sampling is parallelized with `std`
//! scoped threads; every shot derives its own RNG stream from the base seed, so the
//! estimate is identical for any worker count. Each worker owns a [`ShotScratch`]
//! (error/syndrome/residual buffers plus one [`DecoderScratch`] per sector decoder),
//! so steady-state sampling performs zero heap allocation.

use crate::bposd::BpOsdDecoder;
use crate::scratch::DecoderScratch;
use noise::{ChannelSpec, ErrorChannel, HardwareNoiseModel};
use qec::CssCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// An estimated logical error rate with sampling statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LerEstimate {
    /// Number of Monte-Carlo shots.
    pub shots: usize,
    /// Number of shots in which a logical X or Z error occurred.
    pub failures: usize,
    /// Point estimate `failures / shots` (with a half-failure floor when no failure
    /// was observed, so log-scale plots remain finite).
    pub ler: f64,
    /// Binomial standard error of the estimate.
    pub std_err: f64,
}

impl LerEstimate {
    /// Builds the estimate from raw counts (the counting constructor, so a cached
    /// `(shots, failures)` pair round-trips to a bit-identical estimate).
    ///
    /// # Panics
    ///
    /// Panics if `shots` is zero (use [`LerEstimate::empty`] for a no-data estimate).
    pub fn from_counts(shots: usize, failures: usize) -> Self {
        assert!(shots > 0, "need at least one shot");
        let raw = failures as f64 / shots as f64;
        let ler = if failures == 0 {
            0.5 / shots as f64
        } else {
            raw
        };
        // The standard error is computed from the (possibly floored) estimate, so a
        // zero-failure point carries a nonzero uncertainty instead of std_err = 0.
        let std_err = (ler * (1.0 - ler) / shots as f64).sqrt();
        LerEstimate {
            shots,
            failures,
            ler,
            std_err,
        }
    }

    /// The explicit no-data estimate a zero-shot configuration produces: zero shots,
    /// zero failures, `ler` and `std_err` both 0.0 (never NaN), and neither an
    /// upper bound nor a real measurement.
    ///
    /// Regression guard: `shots == 0` used to fabricate a phantom 1-shot
    /// zero-failure estimate with a misleading 0.5 LER floor.
    pub const fn empty() -> Self {
        LerEstimate {
            shots: 0,
            failures: 0,
            ler: 0.0,
            std_err: 0.0,
        }
    }

    /// Whether this estimate carries no data at all (zero shots).
    pub fn is_empty(&self) -> bool {
        self.shots == 0
    }

    /// Whether shots were taken but no failure was observed (the estimate is an
    /// upper-bound floor). An [empty](LerEstimate::is_empty) estimate is *not* an
    /// upper bound — it is no measurement at all.
    pub fn is_upper_bound(&self) -> bool {
        self.shots > 0 && self.failures == 0
    }

    /// The relative standard error `std_err / ler` ([`f64::INFINITY`] when there is
    /// no positive point estimate to normalize by, never NaN).
    pub fn relative_std_err(&self) -> f64 {
        if self.ler > 0.0 {
            self.std_err / self.ler
        } else {
            f64::INFINITY
        }
    }
}

/// A precision target for adaptive (stop-at-precision) Monte-Carlo sampling.
///
/// A point stops at the smallest shot count at which it has seen at least
/// `min_failures` failures **and** its [relative standard
/// error](LerEstimate::relative_std_err) is at or below `target_rse`, capped by
/// `max_shots`. Requiring both keeps the stop rule honest: the failure-count floor
/// guards against stopping on a noisy early `std_err` estimate, and the relative
/// standard error is the actual precision knob (`rse ≈ 1/√failures` for rare
/// failures, so `min_failures = 100` alone already means `rse ≈ 0.1`).
///
/// The stopping decision is evaluated on shot *prefixes* of the same seeded
/// per-shot RNG streams the fixed-budget path uses, so the adaptive result is the
/// fixed result of its own shot count: bit-identical at any worker count and any
/// execution batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionTarget {
    /// Stop once the relative standard error (`std_err / ler`) is at or below this
    /// (`0.0` never stops early: sample to `max_shots`).
    pub target_rse: f64,
    /// ... and at least this many failures were observed (a floor of 1 is always
    /// applied, so the rse check never runs on a floored zero-failure estimate).
    pub min_failures: usize,
    /// Hard cap on the number of shots spent on one point.
    pub max_shots: usize,
}

impl PrecisionTarget {
    /// A target with the given relative-standard-error goal, failure floor, and
    /// shot cap.
    pub fn new(target_rse: f64, min_failures: usize, max_shots: usize) -> Self {
        PrecisionTarget {
            target_rse,
            min_failures,
            max_shots,
        }
    }

    /// Whether a `(shots, failures)` pair meets this target (the stop rule, also
    /// used by the sweep cache to decide whether a cached point may be reused for a
    /// precision-targeted request). The `max_shots` cap is deliberately not
    /// consulted here: this is the *precision* criterion alone.
    pub fn met_by(&self, shots: usize, failures: usize) -> bool {
        if shots == 0 || failures < self.min_failures.max(1) {
            return false;
        }
        let est = LerEstimate::from_counts(shots, failures);
        est.std_err <= self.target_rse * est.ler
    }
}

/// Configuration of a memory experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Number of Monte-Carlo shots.
    pub shots: usize,
    /// Maximum BP iterations before the OSD fallback.
    pub bp_iterations: usize,
    /// Number of worker threads (0 = use available parallelism).
    pub threads: usize,
    /// Base RNG seed (each shot derives its own stream, so the estimate does
    /// not depend on the worker count).
    pub seed: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            shots: 2_000,
            bp_iterations: 30,
            threads: 0,
            seed: 0xC1C1_0DE5,
        }
    }
}

impl MemoryConfig {
    /// Creates a config with the given number of shots and defaults elsewhere.
    pub fn with_shots(shots: usize) -> Self {
        MemoryConfig {
            shots,
            ..Default::default()
        }
    }

    /// Resolves the configured thread count to a concrete worker count
    /// (0 = available parallelism, capped at 16).
    pub fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(16)
        }
    }

    /// The RNG seed of one Monte-Carlo shot: a SplitMix64-style stream split of
    /// the base seed, independent of which worker runs the shot.
    fn shot_seed(&self, shot: usize) -> u64 {
        self.seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shot as u64 + 1))
    }
}

/// Per-worker sampling workspace: one [`DecoderScratch`] per sector decoder plus the
/// error/syndrome/residual buffers of a shot, so [`MemoryExperiment::sample_one_with`]
/// performs zero heap allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct ShotScratch {
    x_decode: DecoderScratch,
    z_decode: DecoderScratch,
    x_error: Vec<bool>,
    z_error: Vec<bool>,
    syndrome: Vec<bool>,
    residual: Vec<bool>,
}

impl ShotScratch {
    /// Creates an empty workspace; buffers are sized on first shot.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A logical-memory experiment for one code under one hardware noise model and one
/// per-qubit [`ErrorChannel`].
#[derive(Debug)]
pub struct MemoryExperiment<'a> {
    code: &'a CssCode,
    model: HardwareNoiseModel,
    /// The per-qubit channel driving the sampler. Defaults to the uniform channel
    /// at the model's effective error rate, which reproduces the historical scalar
    /// path bit-for-bit.
    channel: ErrorChannel,
    /// Per-bit decoder priors: the channel's data rates clamped to the decoder's
    /// numerically safe range (rebuilt whenever the channel changes).
    priors: Vec<f64>,
    x_decoder: BpOsdDecoder,
    z_decoder: BpOsdDecoder,
}

impl<'a> MemoryExperiment<'a> {
    /// Builds the experiment (constructing BP+OSD decoders for both sectors) with
    /// the uniform channel at the model's effective error rate.
    pub fn new(code: &'a CssCode, model: HardwareNoiseModel, bp_iterations: usize) -> Self {
        let mut exp = MemoryExperiment {
            code,
            model,
            channel: ErrorChannel::uniform(code.num_qubits(), model.effective_error_rate()),
            priors: Vec::new(),
            // Hx detects Z errors; Hz detects X errors.
            x_decoder: BpOsdDecoder::new(code.hz(), bp_iterations),
            z_decoder: BpOsdDecoder::new(code.hx(), bp_iterations),
        };
        exp.rebuild_priors();
        exp
    }

    /// Builds the experiment with an explicit channel (see
    /// [`MemoryExperiment::set_channel`]).
    pub fn with_channel(
        code: &'a CssCode,
        model: HardwareNoiseModel,
        channel: ErrorChannel,
        bp_iterations: usize,
    ) -> Self {
        let mut exp = Self::new(code, model, bp_iterations);
        exp.set_channel(channel);
        exp
    }

    /// Replaces the noise model, keeping the (expensive-to-build) sector decoders.
    /// The channel is reset to the uniform channel of the new model — a previous
    /// [`set_channel`](MemoryExperiment::set_channel) never leaks across points.
    ///
    /// Latency and error-rate sweeps over one code should construct a single
    /// experiment and call this between points instead of rebuilding everything.
    pub fn set_model(&mut self, model: HardwareNoiseModel) {
        self.model = model;
        self.set_channel(ErrorChannel::uniform(
            self.code.num_qubits(),
            model.effective_error_rate(),
        ));
    }

    /// Replaces the per-qubit error channel, keeping model and decoders.
    ///
    /// # Panics
    ///
    /// Panics if the channel's data length differs from the code's qubit count, or
    /// a non-empty measurement vector differs from the code's check count
    /// (X-sector checks then Z-sector, see `noise::channel`).
    pub fn set_channel(&mut self, channel: ErrorChannel) {
        assert_eq!(
            channel.num_data(),
            self.code.num_qubits(),
            "channel sized for a different code"
        );
        assert!(
            !channel.has_measurement_noise()
                || channel.measurement().len() == self.code.num_stabilizers(),
            "channel has {} measurement checks, code has {}",
            channel.measurement().len(),
            self.code.num_stabilizers()
        );
        self.channel = channel;
        self.rebuild_priors();
    }

    /// The channel currently driving the sampler.
    pub fn channel(&self) -> &ErrorChannel {
        &self.channel
    }

    fn rebuild_priors(&mut self) {
        self.priors.clear();
        self.priors
            .extend(self.channel.data().iter().map(|&p| p.clamp(1e-9, 0.45)));
    }

    /// The effective per-qubit, per-round error rate driving the sampling.
    pub fn effective_error_rate(&self) -> f64 {
        self.model.effective_error_rate()
    }

    /// Runs one shot with the given RNG; returns `true` when a logical error occurred.
    ///
    /// Allocating convenience wrapper around [`MemoryExperiment::sample_one_with`].
    pub fn sample_one<R: Rng>(&self, rng: &mut R) -> bool {
        self.sample_one_with(rng, &mut ShotScratch::new())
    }

    /// Runs one shot with the given RNG, borrowing all working buffers from
    /// `scratch`; returns `true` when a logical error occurred. In steady state
    /// (after the first shot has sized the buffers) this performs no heap allocation.
    ///
    /// With the uniform channel this is the historical scalar path — same RNG
    /// stream, same cached-LLR `decode_into` — bit for bit. A structured channel
    /// samples each data qubit at its own rate, flips extracted syndrome bits at
    /// the channel's measurement rates, and decodes with matching per-bit priors
    /// via `decode_with_priors_into`.
    pub fn sample_one_with<R: Rng>(&self, rng: &mut R, scratch: &mut ShotScratch) -> bool {
        let n = self.code.num_qubits();
        let uniform = self.channel.uniform_rate();
        // Depolarizing channel: X, Y, Z each with p/3. X-frame = X or Y; Z-frame = Z or Y.
        scratch.x_error.clear();
        scratch.x_error.resize(n, false);
        scratch.z_error.clear();
        scratch.z_error.resize(n, false);
        match uniform {
            Some(p) => {
                for q in 0..n {
                    if rng.gen_bool(p.min(0.75)) {
                        depolarize(rng, scratch, q);
                    }
                }
            }
            None => {
                for (q, &pq) in self.channel.data().iter().enumerate() {
                    if rng.gen_bool(pq.min(0.75)) {
                        depolarize(rng, scratch, q);
                    }
                }
            }
        }
        // Measurement flip rates per sector: the X decoder consumes Z-stabilizer
        // checks (rows of Hz, the tail of the channel's check-major layout), the Z
        // decoder consumes X-stabilizer checks (the head).
        let (x_check_rates, z_check_rates) = if self.channel.has_measurement_noise() {
            let split = self.code.num_x_stabilizers();
            let m = self.channel.measurement();
            (&m[..split], &m[split..])
        } else {
            (&[] as &[f64], &[] as &[f64])
        };
        // X errors are detected by Z stabilizers and corrected by the X decoder.
        self.x_decoder
            .check_matrix()
            .syndrome_into(&scratch.x_error, &mut scratch.syndrome);
        flip_syndrome(rng, &mut scratch.syndrome, z_check_rates);
        self.decode_sector(
            &self.x_decoder,
            uniform,
            &scratch.syndrome,
            &mut scratch.x_decode,
        );
        xor_into(
            &scratch.x_error,
            scratch.x_decode.error(),
            &mut scratch.residual,
        );
        if self.code.x_error_is_logical(&scratch.residual) {
            return true;
        }
        // Z errors are detected by X stabilizers.
        self.z_decoder
            .check_matrix()
            .syndrome_into(&scratch.z_error, &mut scratch.syndrome);
        flip_syndrome(rng, &mut scratch.syndrome, x_check_rates);
        self.decode_sector(
            &self.z_decoder,
            uniform,
            &scratch.syndrome,
            &mut scratch.z_decode,
        );
        xor_into(
            &scratch.z_error,
            scratch.z_decode.error(),
            &mut scratch.residual,
        );
        self.code.z_error_is_logical(&scratch.residual)
    }

    /// One sector decode: the uniform channel keeps the cached-LLR scalar path,
    /// structured channels pass the per-bit priors.
    fn decode_sector(
        &self,
        decoder: &BpOsdDecoder,
        uniform: Option<f64>,
        syndrome: &[bool],
        scratch: &mut DecoderScratch,
    ) {
        match uniform {
            Some(p) => {
                decoder.decode_into(syndrome, p.clamp(1e-9, 0.45), scratch);
            }
            None => {
                decoder.decode_with_priors_into(syndrome, &self.priors, scratch);
            }
        }
    }

    /// Runs the full Monte-Carlo experiment in parallel and returns the LER estimate.
    ///
    /// Each shot is seeded independently from [`MemoryConfig::seed`], so the estimate
    /// is bit-identical for every `threads` setting (workers pull shots from a shared
    /// counter purely for load balancing). Every worker owns one [`ShotScratch`], so
    /// sampling allocates only at worker startup, never per shot.
    pub fn run(&self, config: &MemoryConfig) -> LerEstimate {
        // A zero-shot configuration yields the explicit empty estimate instead of
        // fabricating a phantom 1-shot zero-failure floor.
        if config.shots == 0 {
            return LerEstimate::empty();
        }
        let workers = config.worker_count().max(1);
        let shots = config.shots;
        let failures = AtomicUsize::new(0);
        let next_shot = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = ShotScratch::new();
                    let mut local_failures = 0usize;
                    loop {
                        let shot = next_shot.fetch_add(1, Ordering::Relaxed);
                        if shot >= shots {
                            break;
                        }
                        let mut rng = StdRng::seed_from_u64(config.shot_seed(shot));
                        if self.sample_one_with(&mut rng, &mut scratch) {
                            local_failures += 1;
                        }
                    }
                    failures.fetch_add(local_failures, Ordering::Relaxed);
                });
            }
        });
        LerEstimate::from_counts(shots, failures.load(Ordering::Relaxed))
    }

    /// Runs an adaptive (stop-at-precision) Monte-Carlo experiment with the default
    /// execution batch size ([`ADAPTIVE_BATCH`]).
    ///
    /// Shots use exactly the per-shot RNG streams of [`MemoryExperiment::run`]
    /// (derived from [`MemoryConfig::seed`]), and the run stops at the smallest shot
    /// count meeting `target` (see [`PrecisionTarget`]), capped by
    /// `target.max_shots`. The returned estimate is therefore bit-identical to a
    /// fixed-budget [`run`](MemoryExperiment::run) of the same shot count — the
    /// adaptive path only *chooses* the budget, it never changes the sample.
    /// `config.shots` is ignored; `config.threads` parallelizes within each batch.
    pub fn run_adaptive(&self, config: &MemoryConfig, target: &PrecisionTarget) -> LerEstimate {
        self.run_adaptive_batched(config, target, ADAPTIVE_BATCH)
    }

    /// [`run_adaptive`](MemoryExperiment::run_adaptive) with an explicit initial
    /// execution batch size.
    ///
    /// Batching only controls how many shots are sampled between stop-rule
    /// evaluations — the stopping decision is made on per-shot prefixes of the
    /// batch, so the result is bit-identical for every `batch` and every
    /// `config.threads` setting. Batches grow geometrically (doubling up to
    /// [`ADAPTIVE_BATCH_CAP`]) so a cap-bound point pays O(log) batch handoffs
    /// instead of one per `batch` shots.
    pub fn run_adaptive_batched(
        &self,
        config: &MemoryConfig,
        target: &PrecisionTarget,
        batch: usize,
    ) -> LerEstimate {
        let max_shots = target.max_shots;
        if max_shots == 0 {
            return LerEstimate::empty();
        }
        let mut batch = batch.max(1);
        let workers = config.worker_count().max(1);
        let mut done = 0usize;
        let mut failures = 0usize;
        let mut scratch = ShotScratch::new();
        let mut flags: Vec<AtomicBool> = Vec::new();
        while done < max_shots {
            let n = batch.min(max_shots - done);
            batch = batch.saturating_mul(2).min(ADAPTIVE_BATCH_CAP);
            if workers == 1 {
                // Single-worker fast path: evaluate the stop rule after every shot
                // (equivalent to the batched scan below, without the flag buffer).
                for k in 0..n {
                    let mut rng = StdRng::seed_from_u64(config.shot_seed(done + k));
                    if self.sample_one_with(&mut rng, &mut scratch) {
                        failures += 1;
                    }
                    if target.met_by(done + k + 1, failures) {
                        return LerEstimate::from_counts(done + k + 1, failures);
                    }
                }
            } else {
                // Sample the whole batch in parallel (each shot owns its seeded
                // stream and a disjoint flag slot), then scan the flags in shot
                // order for the earliest prefix meeting the target.
                flags.clear();
                flags.resize_with(n, || AtomicBool::new(false));
                let next = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| {
                            let mut scratch = ShotScratch::new();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= n {
                                    break;
                                }
                                let mut rng = StdRng::seed_from_u64(config.shot_seed(done + k));
                                if self.sample_one_with(&mut rng, &mut scratch) {
                                    flags[k].store(true, Ordering::Relaxed);
                                }
                            }
                        });
                    }
                });
                for (k, flag) in flags.iter().enumerate() {
                    if flag.load(Ordering::Relaxed) {
                        failures += 1;
                    }
                    if target.met_by(done + k + 1, failures) {
                        return LerEstimate::from_counts(done + k + 1, failures);
                    }
                }
            }
            done += n;
        }
        LerEstimate::from_counts(done, failures)
    }
}

/// Default initial execution batch size of [`MemoryExperiment::run_adaptive`]:
/// large enough to amortize thread handoffs, small enough that a high-failure point
/// stops within a few batches. Batch sizes never affect results, only scheduling.
pub const ADAPTIVE_BATCH: usize = 256;

/// Ceiling of the geometric batch growth in
/// [`MemoryExperiment::run_adaptive_batched`]: bounds both the flag-buffer size
/// and the shots sampled past a satisfiable stopping point.
pub const ADAPTIVE_BATCH_CAP: usize = 16_384;

/// One operating point of a logical-error-rate sweep: a code evaluated at physical
/// error rate `p` with a syndrome-extraction round latency of `latency` seconds,
/// optionally under a structured error channel.
#[derive(Debug, Clone, Copy)]
pub struct LerPoint<'a> {
    /// The code under test.
    pub code: &'a CssCode,
    /// Physical error rate.
    pub p: f64,
    /// Round latency in seconds (drives the decoherence contribution).
    pub latency: f64,
    /// How the hardware model is lifted to a per-qubit channel: `None` (or
    /// [`ChannelSpec::Uniform`]) is the historical scalar path, bit for bit.
    pub channel: Option<&'a ChannelSpec>,
}

/// Estimates every point of a sweep across a shared worker pool at *point*
/// granularity, returning the estimates in input order.
///
/// This is the parallel primitive under the `cyclone::sweep` engine: sweeps are
/// embarrassingly parallel across operating points, so instead of parallelizing the
/// shots *within* one point (as [`MemoryExperiment::run`] does) the pool runs whole
/// points concurrently, each single-threaded. Every point is evaluated exactly as
/// [`logical_error_rate`] would — same shot count, same per-shot RNG streams derived
/// from [`MemoryConfig::seed`] — so the result vector is bit-identical to the serial
/// loop at every worker count.
///
/// Workers reuse one [`MemoryExperiment`] (the expensive-to-build sector decoder
/// pair) per distinct code, moving it between operating points with
/// [`MemoryExperiment::set_model`]. `config.threads` sizes the pool (0 = available
/// parallelism, capped at 16).
pub fn estimate_points(points: &[LerPoint<'_>], config: &MemoryConfig) -> Vec<LerEstimate> {
    estimate_points_adaptive(points, &vec![None; points.len()], config)
}

/// [`estimate_points`] with an optional [`PrecisionTarget`] per point: `None` runs
/// the fixed `config.shots` budget exactly as before; `Some(target)` samples the
/// point adaptively (stop at precision, capped by `target.max_shots`, see
/// [`MemoryExperiment::run_adaptive`]). Fixed and adaptive points may be mixed in
/// one call and share the pool.
///
/// # Panics
///
/// Panics if `targets` is not exactly one entry per point.
pub fn estimate_points_adaptive(
    points: &[LerPoint<'_>],
    targets: &[Option<PrecisionTarget>],
    config: &MemoryConfig,
) -> Vec<LerEstimate> {
    assert_eq!(
        points.len(),
        targets.len(),
        "need exactly one precision target slot per point"
    );
    if points.is_empty() {
        return Vec::new();
    }
    let workers = config.worker_count().max(1).min(points.len());
    // Each point samples with a single worker thread; both the fixed and the
    // adaptive estimate are thread-count invariant, so this only affects
    // scheduling, never the values.
    let point_config = MemoryConfig {
        threads: 1,
        ..*config
    };
    let next_point = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<LerEstimate>>> =
        points.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Decoder pairs are cached per code (keyed by the reference's
                // address, stable for the duration of the scope).
                let mut experiments: Vec<(*const CssCode, MemoryExperiment<'_>)> = Vec::new();
                loop {
                    let i = next_point.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let point = &points[i];
                    let key = std::ptr::from_ref(point.code);
                    let model = HardwareNoiseModel::new(
                        noise::NoiseParameters::new(point.p),
                        point.latency,
                    );
                    let exp = match experiments.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, exp)) => {
                            exp.set_model(model);
                            exp
                        }
                        None => {
                            experiments.push((
                                key,
                                MemoryExperiment::new(
                                    point.code,
                                    model,
                                    point_config.bp_iterations,
                                ),
                            ));
                            &mut experiments.last_mut().expect("just pushed").1
                        }
                    };
                    // A structured channel replaces the uniform one set_model just
                    // installed; uniform specs skip the rebuild and keep the
                    // historical fast path byte-for-byte.
                    if let Some(spec) = point.channel {
                        if !spec.is_uniform() {
                            exp.set_channel(spec.instantiate(
                                &model,
                                point.code.num_qubits(),
                                point.code.num_stabilizers(),
                            ));
                        }
                    }
                    let estimate = match &targets[i] {
                        None => exp.run(&point_config),
                        Some(target) => exp.run_adaptive(&point_config, target),
                    };
                    *results[i].lock().expect("unpoisoned") = Some(estimate);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned")
                .expect("every point ran")
        })
        .collect()
}

/// XORs two equal-length slices into a reused output buffer.
fn xor_into(a: &[bool], b: &[bool], out: &mut Vec<bool>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| x ^ y));
}

/// Applies one depolarizing event to qubit `q`: X, Y, Z each with probability 1/3
/// (X-frame = X or Y; Z-frame = Z or Y).
#[inline]
fn depolarize<R: Rng>(rng: &mut R, scratch: &mut ShotScratch, q: usize) {
    match rng.gen_range(0..3) {
        0 => scratch.x_error[q] = true,
        1 => scratch.z_error[q] = true,
        _ => {
            scratch.x_error[q] = true;
            scratch.z_error[q] = true;
        }
    }
}

/// Flips each extracted syndrome bit with its check's measurement error rate.
/// An empty rate slice (noiseless measurement) draws nothing from the RNG, so the
/// uniform channel's stream stays bit-identical to the historical path.
#[inline]
fn flip_syndrome<R: Rng>(rng: &mut R, syndrome: &mut [bool], rates: &[f64]) {
    if rates.is_empty() {
        return;
    }
    debug_assert_eq!(
        syndrome.len(),
        rates.len(),
        "one measurement rate per check"
    );
    for (bit, &p) in syndrome.iter_mut().zip(rates) {
        if rng.gen_bool(p) {
            *bit = !*bit;
        }
    }
}

/// Convenience: estimate the LER of `code` for a round that takes `latency` seconds at
/// physical error rate `p`.
pub fn logical_error_rate(
    code: &CssCode,
    p: f64,
    latency: f64,
    config: &MemoryConfig,
) -> LerEstimate {
    let model = HardwareNoiseModel::new(noise::NoiseParameters::new(p), latency);
    MemoryExperiment::new(code, model, config.bp_iterations).run(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noise::NoiseParameters;
    use qec::codes::bb_72_12_6;

    #[test]
    fn low_noise_gives_low_ler() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 0.0);
        let exp = MemoryExperiment::new(&code, model, 25);
        let est = exp.run(&MemoryConfig {
            shots: 300,
            ..Default::default()
        });
        assert!(
            est.ler < 0.1,
            "LER {} too high at p=1e-4 with zero latency",
            est.ler
        );
    }

    #[test]
    fn latency_increases_ler() {
        let code = bb_72_12_6().expect("valid");
        let cfg = MemoryConfig {
            shots: 400,
            ..Default::default()
        };
        let fast = logical_error_rate(&code, 2e-3, 0.0, &cfg);
        let slow = logical_error_rate(&code, 2e-3, 0.3, &cfg);
        assert!(
            slow.ler >= fast.ler,
            "long latency ({}) should not beat zero latency ({})",
            slow.ler,
            fast.ler
        );
    }

    #[test]
    fn huge_noise_gives_high_ler() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(0.2), 0.0);
        let exp = MemoryExperiment::new(&code, model, 10);
        let est = exp.run(&MemoryConfig {
            shots: 100,
            ..Default::default()
        });
        assert!(est.ler > 0.2, "LER {} suspiciously low at p=0.2", est.ler);
    }

    #[test]
    fn thread_count_does_not_change_the_estimate() {
        // threads: 0 resolves to available parallelism; because every shot owns
        // its own seeded RNG stream, the estimate must match a single-threaded
        // run exactly.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(8e-3), 5e-3);
        let exp = MemoryExperiment::new(&code, model, 20);
        let base = MemoryConfig {
            shots: 250,
            bp_iterations: 20,
            threads: 0,
            seed: 0xC1C1_0DE5,
        };
        let auto = exp.run(&base);
        let single = exp.run(&MemoryConfig { threads: 1, ..base });
        let four = exp.run(&MemoryConfig { threads: 4, ..base });
        assert_eq!(auto.failures, single.failures);
        assert_eq!(auto.failures, four.failures);
        assert_eq!(auto.ler, single.ler);
        assert_eq!(auto.shots, single.shots);
    }

    #[test]
    fn estimate_counts_consistent() {
        let e = LerEstimate::from_counts(1000, 10);
        assert_eq!(e.ler, 0.01);
        assert!(!e.is_upper_bound());
        let zero = LerEstimate::from_counts(1000, 0);
        assert!(zero.is_upper_bound());
        assert!(zero.ler > 0.0);
    }

    #[test]
    fn zero_failure_estimate_carries_nonzero_std_err() {
        // Regression: std_err used to come from the raw (zero) failure fraction, so
        // zero-failure points plotted with zero uncertainty despite the ler floor.
        let zero = LerEstimate::from_counts(400, 0);
        assert!(
            zero.std_err > 0.0,
            "floored estimate must have nonzero std_err"
        );
        let expected = (zero.ler * (1.0 - zero.ler) / 400.0).sqrt();
        assert_eq!(zero.std_err, expected);
        // Nonzero-failure points are unchanged: ler equals the raw fraction.
        let some = LerEstimate::from_counts(1000, 10);
        assert_eq!(some.std_err, (0.01f64 * 0.99 / 1000.0).sqrt());
    }

    #[test]
    fn zero_shot_config_returns_the_empty_estimate() {
        // Regression: shots == 0 used to fabricate a phantom 1-shot zero-failure
        // estimate (ler floored to 0.5) via `from_counts(shots.max(1), ...)`.
        let code = bb_72_12_6().expect("valid");
        let est = logical_error_rate(&code, 5e-3, 0.0, &MemoryConfig::with_shots(0));
        assert!(est.is_empty());
        assert_eq!(est.shots, 0);
        assert_eq!(est.failures, 0);
        assert_eq!(est.ler, 0.0);
        assert_eq!(est.std_err, 0.0);
        assert!(
            !est.is_upper_bound(),
            "no shots is no measurement, not an upper bound"
        );
        assert!(est.ler.is_finite() && est.std_err.is_finite());
        assert_eq!(est.relative_std_err(), f64::INFINITY);
        assert_eq!(est, LerEstimate::empty());
    }

    #[test]
    fn precision_target_stop_rule() {
        let t = PrecisionTarget::new(0.48, 3, 10_000);
        // Below the failure floor: never met, whatever the rse would be.
        assert!(!t.met_by(10_000, 2));
        assert!(!t.met_by(0, 0));
        // rse = sqrt((1-p)/(p*s)): 4 failures in 40 shots → p=0.1, rse = 0.474 ≤ 0.48.
        assert!(t.met_by(40, 4));
        // Same failures over more shots → rse approaches 1/√failures = 0.49975 → not met.
        assert!(!t.met_by(4_000, 4));
        // The failure floor is at least 1, so a floored zero-failure estimate never
        // satisfies any target.
        let loose = PrecisionTarget::new(100.0, 0, 100);
        assert!(!loose.met_by(100, 0));
        assert!(loose.met_by(100, 1));
        // target_rse = 0 never stops early.
        assert!(!PrecisionTarget::new(0.0, 1, 100).met_by(100, 99));
    }

    #[test]
    fn adaptive_estimate_is_a_prefix_of_the_fixed_path() {
        // The adaptive run must return exactly what a fixed-budget run of its own
        // shot count returns: the stop rule chooses the budget, never the sample.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(0.05), 0.0);
        let exp = MemoryExperiment::new(&code, model, 15);
        let config = MemoryConfig {
            shots: 0, // ignored by the adaptive path
            bp_iterations: 15,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let target = PrecisionTarget::new(0.35, 8, 5_000);
        let adaptive = exp.run_adaptive(&config, &target);
        assert!(adaptive.shots < 5_000, "high-failure point must stop early");
        assert!(target.met_by(adaptive.shots, adaptive.failures));
        assert!(
            !target.met_by(
                adaptive.shots - 1,
                adaptive.failures - usize::from(adaptive.failures > 0)
            ),
            "must stop at the *smallest* qualifying prefix"
        );
        let fixed = exp.run(&MemoryConfig {
            shots: adaptive.shots,
            ..config
        });
        assert_eq!(
            adaptive, fixed,
            "adaptive result must be the fixed result of its shot count"
        );
    }

    #[test]
    fn adaptive_is_thread_and_batch_invariant() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(0.04), 0.0);
        let exp = MemoryExperiment::new(&code, model, 15);
        let base = MemoryConfig {
            shots: 0,
            bp_iterations: 15,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let target = PrecisionTarget::new(0.4, 6, 2_000);
        let reference = exp.run_adaptive_batched(&base, &target, 1);
        for (threads, batch) in [(1usize, 7usize), (1, 64), (4, 1), (4, 32), (4, 997)] {
            let got = exp.run_adaptive_batched(&MemoryConfig { threads, ..base }, &target, batch);
            assert_eq!(
                got, reference,
                "threads={threads} batch={batch} diverged from the single-shot reference"
            );
        }
        assert_eq!(
            exp.run_adaptive(&MemoryConfig { threads: 4, ..base }, &target),
            reference
        );
    }

    #[test]
    fn adaptive_caps_at_max_shots() {
        // An unreachable target (failure floor above what the cap can deliver)
        // must cap at max_shots and match the fixed run of that budget exactly.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 0.0);
        let exp = MemoryExperiment::new(&code, model, 15);
        let config = MemoryConfig {
            shots: 0,
            bp_iterations: 15,
            threads: 2,
            seed: 0xC1C1_0DE5,
        };
        let target = PrecisionTarget::new(0.1, 1_000_000, 300);
        let capped = exp.run_adaptive(&config, &target);
        assert_eq!(capped.shots, 300);
        assert_eq!(
            capped,
            exp.run(&MemoryConfig {
                shots: 300,
                ..config
            })
        );
        // A zero-shot cap is the empty estimate, like a zero-shot fixed config.
        let empty = exp.run_adaptive(&config, &PrecisionTarget::new(0.1, 1, 0));
        assert!(empty.is_empty());
    }

    #[test]
    fn estimate_points_adaptive_mixes_fixed_and_adaptive_points() {
        let code = bb_72_12_6().expect("valid");
        let config = MemoryConfig {
            shots: 150,
            bp_iterations: 15,
            threads: 4,
            seed: 0xC1C1_0DE5,
        };
        let points = [
            LerPoint {
                code: &code,
                p: 0.05,
                latency: 0.0,
                channel: None,
            },
            LerPoint {
                code: &code,
                p: 0.05,
                latency: 0.0,
                channel: None,
            },
        ];
        let target = PrecisionTarget::new(0.4, 6, 4_000);
        let targets = [None, Some(target)];
        let mixed = estimate_points_adaptive(&points, &targets, &config);
        // The fixed slot matches the plain fixed path ...
        assert_eq!(mixed[0], logical_error_rate(&code, 0.05, 0.0, &config));
        // ... and the adaptive slot matches a direct adaptive run.
        let model = HardwareNoiseModel::new(NoiseParameters::new(0.05), 0.0);
        let exp = MemoryExperiment::new(&code, model, config.bp_iterations);
        assert_eq!(
            mixed[1],
            exp.run_adaptive(
                &MemoryConfig {
                    threads: 1,
                    ..config
                },
                &target
            )
        );
    }

    #[test]
    fn scratch_sampling_matches_allocating_sampling() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(6e-3), 2e-3);
        let exp = MemoryExperiment::new(&code, model, 20);
        let mut scratch = ShotScratch::new();
        for shot in 0..40u64 {
            let mut rng_a = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot);
            let mut rng_b = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot);
            assert_eq!(
                exp.sample_one(&mut rng_a),
                exp.sample_one_with(&mut rng_b, &mut scratch),
                "shot {shot} diverged between allocating and scratch paths"
            );
        }
    }

    #[test]
    fn estimate_points_matches_serial_calls() {
        let code = bb_72_12_6().expect("valid");
        let cfg = MemoryConfig {
            shots: 120,
            bp_iterations: 20,
            threads: 4,
            seed: 0xC1C1_0DE5,
        };
        let points = [
            LerPoint {
                code: &code,
                p: 2e-3,
                latency: 0.0,
                channel: None,
            },
            LerPoint {
                code: &code,
                p: 2e-3,
                latency: 0.05,
                channel: None,
            },
            LerPoint {
                code: &code,
                p: 8e-3,
                latency: 0.01,
                channel: None,
            },
        ];
        let pooled = estimate_points(&points, &cfg);
        assert_eq!(pooled.len(), 3);
        for (point, est) in points.iter().zip(&pooled) {
            let direct = logical_error_rate(point.code, point.p, point.latency, &cfg);
            assert_eq!(est.failures, direct.failures, "point {point:?} diverged");
            assert_eq!(est.ler, direct.ler);
            assert_eq!(est.shots, direct.shots);
        }
    }

    #[test]
    fn estimate_points_is_pool_size_invariant() {
        let code = bb_72_12_6().expect("valid");
        let base = MemoryConfig {
            shots: 80,
            bp_iterations: 15,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let points: Vec<LerPoint<'_>> = [1e-3, 3e-3, 6e-3, 9e-3]
            .iter()
            .map(|&p| LerPoint {
                code: &code,
                p,
                latency: 0.02,
                channel: None,
            })
            .collect();
        let serial = estimate_points(&points, &base);
        let pooled = estimate_points(&points, &MemoryConfig { threads: 4, ..base });
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.ler, b.ler);
        }
    }

    #[test]
    fn estimate_points_handles_empty_input() {
        assert!(estimate_points(&[], &MemoryConfig::default()).is_empty());
    }

    #[test]
    fn explicit_uniform_channel_is_bit_identical_to_the_scalar_path() {
        // Installing the uniform channel by hand must reproduce the historical
        // scalar path exactly: same RNG stream, same cached-LLR decodes.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(8e-3), 5e-3);
        let cfg = MemoryConfig {
            shots: 200,
            bp_iterations: 20,
            threads: 2,
            seed: 0xC1C1_0DE5,
        };
        let scalar = MemoryExperiment::new(&code, model, cfg.bp_iterations).run(&cfg);
        let channel = noise::ErrorChannel::uniform(code.num_qubits(), model.effective_error_rate());
        let channeled =
            MemoryExperiment::with_channel(&code, model, channel, cfg.bp_iterations).run(&cfg);
        assert_eq!(scalar, channeled);
    }

    #[test]
    fn measurement_noise_degrades_the_logical_error_rate() {
        // A biased channel flips extracted syndrome bits, so decoding gets harder:
        // at matched data rates the biased LER must not beat the uniform one (and
        // with a strong bias it should clearly exceed it).
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(4e-3), 0.0);
        let cfg = MemoryConfig {
            shots: 400,
            bp_iterations: 20,
            threads: 2,
            seed: 0xC1C1_0DE5,
        };
        let p = model.effective_error_rate();
        let uniform = MemoryExperiment::new(&code, model, cfg.bp_iterations).run(&cfg);
        let biased = noise::ErrorChannel::biased(
            code.num_qubits(),
            code.num_stabilizers(),
            p,
            (20.0 * p).min(0.45),
        );
        let noisy =
            MemoryExperiment::with_channel(&code, model, biased, cfg.bp_iterations).run(&cfg);
        assert!(
            noisy.failures > uniform.failures,
            "strong measurement noise ({} failures) should beat uniform ({} failures)",
            noisy.failures,
            uniform.failures
        );
    }

    #[test]
    fn structured_channels_are_thread_count_invariant() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(6e-3), 1e-3);
        let p = model.effective_error_rate();
        // Heterogeneous data rates and measurement noise in one channel.
        let mut data: Vec<f64> = vec![p; code.num_qubits()];
        for (q, rate) in data.iter_mut().enumerate() {
            if q % 3 == 0 {
                *rate = (2.0 * p).min(0.5);
            }
        }
        let channel = noise::ErrorChannel::from_rates(data, vec![2e-3; code.num_stabilizers()]);
        let base = MemoryConfig {
            shots: 150,
            bp_iterations: 15,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let exp = MemoryExperiment::with_channel(&code, model, channel, base.bp_iterations);
        let single = exp.run(&base);
        let four = exp.run(&MemoryConfig { threads: 4, ..base });
        assert_eq!(single, four);
    }

    #[test]
    fn set_model_resets_a_structured_channel() {
        // A custom channel must never leak into the next operating point: set_model
        // reinstalls the uniform channel of the new model.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(5e-3), 0.0);
        let cfg = MemoryConfig {
            shots: 150,
            ..Default::default()
        };
        let fresh = MemoryExperiment::new(&code, model, cfg.bp_iterations).run(&cfg);
        let biased =
            noise::ErrorChannel::biased(code.num_qubits(), code.num_stabilizers(), 5e-3, 0.3);
        let mut exp = MemoryExperiment::with_channel(&code, model, biased, cfg.bp_iterations);
        assert!(exp.channel().has_measurement_noise());
        exp.set_model(model);
        assert_eq!(
            exp.channel().uniform_rate(),
            Some(model.effective_error_rate())
        );
        assert_eq!(exp.run(&cfg), fresh);
    }

    #[test]
    fn estimate_points_applies_channel_specs_per_point() {
        let code = bb_72_12_6().expect("valid");
        let cfg = MemoryConfig {
            shots: 150,
            bp_iterations: 15,
            threads: 4,
            seed: 0xC1C1_0DE5,
        };
        let biased = ChannelSpec::Biased { meas_ratio: 20.0 };
        let points = [
            LerPoint {
                code: &code,
                p: 5e-3,
                latency: 0.0,
                channel: None,
            },
            LerPoint {
                code: &code,
                p: 5e-3,
                latency: 0.0,
                channel: Some(&ChannelSpec::Uniform),
            },
            LerPoint {
                code: &code,
                p: 5e-3,
                latency: 0.0,
                channel: Some(&biased),
            },
        ];
        let estimates = estimate_points(&points, &cfg);
        // None and an explicit Uniform spec are the same path ...
        assert_eq!(estimates[0], estimates[1]);
        assert_eq!(estimates[0], logical_error_rate(&code, 5e-3, 0.0, &cfg));
        // ... and the biased point sees more failures under the same seeds.
        assert!(estimates[2].failures > estimates[0].failures);
    }

    #[test]
    fn schedule_channel_samples_end_to_end() {
        // A from_schedule channel (heterogeneous data + ancilla rates) drives the
        // sampler and per-bit priors without panicking, deterministically.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(5e-3), 2e-2);
        let n = code.num_qubits();
        let data_idle: Vec<f64> = (0..n).map(|q| 2e-2 * (q % 5) as f64 / 4.0).collect();
        let meas_idle: Vec<f64> = (0..code.num_stabilizers())
            .map(|c| 1e-2 * (c % 3) as f64)
            .collect();
        let channel = noise::ErrorChannel::from_schedule(&model, &data_idle, &meas_idle);
        assert!(channel.uniform_rate().is_none());
        let cfg = MemoryConfig {
            shots: 120,
            bp_iterations: 15,
            threads: 2,
            seed: 0xC1C1_0DE5,
        };
        let exp = MemoryExperiment::with_channel(&code, model, channel.clone(), cfg.bp_iterations);
        let a = exp.run(&cfg);
        let b = MemoryExperiment::with_channel(&code, model, channel, cfg.bp_iterations).run(&cfg);
        assert_eq!(a, b, "schedule-channel sampling must be deterministic");
        assert_eq!(a.shots, cfg.shots);
    }

    #[test]
    fn set_model_matches_fresh_experiment() {
        let code = bb_72_12_6().expect("valid");
        let cfg = MemoryConfig {
            shots: 120,
            ..Default::default()
        };
        let fresh = logical_error_rate(&code, 5e-3, 0.1, &cfg);
        let mut exp = MemoryExperiment::new(
            &code,
            HardwareNoiseModel::new(NoiseParameters::new(5e-3), 0.0),
            cfg.bp_iterations,
        );
        exp.set_model(HardwareNoiseModel::new(NoiseParameters::new(5e-3), 0.1));
        let reused = exp.run(&cfg);
        assert_eq!(fresh.failures, reused.failures);
        assert_eq!(fresh.ler, reused.ler);
    }
}
