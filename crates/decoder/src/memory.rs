//! Monte-Carlo logical-memory experiments.
//!
//! [`MemoryExperiment`] estimates the logical error rate (LER) of a CSS code under the
//! hardware-aware noise model: the compiled execution latency of one syndrome-
//! extraction round is converted into a decoherence error (Pauli twirling), added to
//! the base circuit-level error rate, and the resulting effective per-qubit error rate
//! drives independent X/Z error sampling, BP+OSD decoding, and logical-failure
//! counting (see DESIGN.md, substitution 3). Sampling is parallelized with `std`
//! scoped threads; every shot derives its own RNG stream from the base seed, so the
//! estimate is identical for any worker count. Each worker owns a [`ShotScratch`]
//! (error/syndrome/residual buffers plus one [`DecoderScratch`] per sector decoder),
//! so steady-state sampling performs zero heap allocation.

use crate::bposd::{BpOsdDecoder, DecodeMethod};
use crate::cache::DecodeCache;
use crate::scratch::DecoderScratch;
use noise::{ChannelSpec, ErrorChannel, HardwareNoiseModel};
use qec::linalg::BitMat;
use qec::CssCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// An estimated logical error rate with sampling statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LerEstimate {
    /// Number of Monte-Carlo shots.
    pub shots: usize,
    /// Number of shots in which a logical X or Z error occurred.
    pub failures: usize,
    /// Point estimate `failures / shots` (with a half-failure floor when no failure
    /// was observed, so log-scale plots remain finite).
    pub ler: f64,
    /// Binomial standard error of the estimate.
    pub std_err: f64,
}

impl LerEstimate {
    /// Builds the estimate from raw counts (the counting constructor, so a cached
    /// `(shots, failures)` pair round-trips to a bit-identical estimate).
    ///
    /// # Panics
    ///
    /// Panics if `shots` is zero (use [`LerEstimate::empty`] for a no-data estimate).
    pub fn from_counts(shots: usize, failures: usize) -> Self {
        assert!(shots > 0, "need at least one shot");
        let raw = failures as f64 / shots as f64;
        let ler = if failures == 0 {
            0.5 / shots as f64
        } else {
            raw
        };
        // The standard error is computed from the (possibly floored) estimate, so a
        // zero-failure point carries a nonzero uncertainty instead of std_err = 0.
        let std_err = (ler * (1.0 - ler) / shots as f64).sqrt();
        LerEstimate {
            shots,
            failures,
            ler,
            std_err,
        }
    }

    /// The explicit no-data estimate a zero-shot configuration produces: zero shots,
    /// zero failures, `ler` and `std_err` both 0.0 (never NaN), and neither an
    /// upper bound nor a real measurement.
    ///
    /// Regression guard: `shots == 0` used to fabricate a phantom 1-shot
    /// zero-failure estimate with a misleading 0.5 LER floor.
    pub const fn empty() -> Self {
        LerEstimate {
            shots: 0,
            failures: 0,
            ler: 0.0,
            std_err: 0.0,
        }
    }

    /// Whether this estimate carries no data at all (zero shots).
    pub fn is_empty(&self) -> bool {
        self.shots == 0
    }

    /// Whether shots were taken but no failure was observed (the estimate is an
    /// upper-bound floor). An [empty](LerEstimate::is_empty) estimate is *not* an
    /// upper bound — it is no measurement at all.
    pub fn is_upper_bound(&self) -> bool {
        self.shots > 0 && self.failures == 0
    }

    /// The relative standard error `std_err / ler` ([`f64::INFINITY`] when there is
    /// no positive point estimate to normalize by, never NaN).
    pub fn relative_std_err(&self) -> f64 {
        if self.ler > 0.0 {
            self.std_err / self.ler
        } else {
            f64::INFINITY
        }
    }
}

/// A precision target for adaptive (stop-at-precision) Monte-Carlo sampling.
///
/// A point stops at the smallest shot count at which it has seen at least
/// `min_failures` failures **and** its [relative standard
/// error](LerEstimate::relative_std_err) is at or below `target_rse`, capped by
/// `max_shots`. Requiring both keeps the stop rule honest: the failure-count floor
/// guards against stopping on a noisy early `std_err` estimate, and the relative
/// standard error is the actual precision knob (`rse ≈ 1/√failures` for rare
/// failures, so `min_failures = 100` alone already means `rse ≈ 0.1`).
///
/// The stopping decision is evaluated on shot *prefixes* of the same seeded
/// per-shot RNG streams the fixed-budget path uses, so the adaptive result is the
/// fixed result of its own shot count: bit-identical at any worker count and any
/// execution batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionTarget {
    /// Stop once the relative standard error (`std_err / ler`) is at or below this
    /// (`0.0` never stops early: sample to `max_shots`).
    pub target_rse: f64,
    /// ... and at least this many failures were observed (a floor of 1 is always
    /// applied, so the rse check never runs on a floored zero-failure estimate).
    pub min_failures: usize,
    /// Hard cap on the number of shots spent on one point.
    pub max_shots: usize,
}

impl PrecisionTarget {
    /// A target with the given relative-standard-error goal, failure floor, and
    /// shot cap.
    pub fn new(target_rse: f64, min_failures: usize, max_shots: usize) -> Self {
        PrecisionTarget {
            target_rse,
            min_failures,
            max_shots,
        }
    }

    /// Whether a `(shots, failures)` pair meets this target (the stop rule, also
    /// used by the sweep cache to decide whether a cached point may be reused for a
    /// precision-targeted request). The `max_shots` cap is deliberately not
    /// consulted here: this is the *precision* criterion alone.
    pub fn met_by(&self, shots: usize, failures: usize) -> bool {
        if shots == 0 || failures < self.min_failures.max(1) {
            return false;
        }
        let est = LerEstimate::from_counts(shots, failures);
        est.std_err <= self.target_rse * est.ler
    }
}

/// Configuration of a memory experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Number of Monte-Carlo shots.
    pub shots: usize,
    /// Maximum BP iterations before the OSD fallback.
    pub bp_iterations: usize,
    /// Number of worker threads (0 = use available parallelism).
    pub threads: usize,
    /// Base RNG seed (each shot derives its own stream, so the estimate does
    /// not depend on the worker count).
    pub seed: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            shots: 2_000,
            bp_iterations: 30,
            threads: 0,
            seed: 0xC1C1_0DE5,
        }
    }
}

impl MemoryConfig {
    /// Creates a config with the given number of shots and defaults elsewhere.
    pub fn with_shots(shots: usize) -> Self {
        MemoryConfig {
            shots,
            ..Default::default()
        }
    }

    /// Resolves the configured thread count to a concrete worker count
    /// (0 = available parallelism, capped at 16).
    pub fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(16)
        }
    }

    /// The RNG seed of one Monte-Carlo shot: a SplitMix64-style stream split of
    /// the base seed, independent of which worker runs the shot. Public so
    /// external drivers (benches, equivalence tests) can replay the exact stream
    /// of any shot of a run.
    pub fn shot_seed(&self, shot: usize) -> u64 {
        self.seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shot as u64 + 1))
    }
}

/// Per-worker sampling workspace: one [`DecoderScratch`] per sector decoder plus the
/// error/syndrome/residual buffers of a shot, so [`MemoryExperiment::sample_one_with`]
/// performs zero heap allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct ShotScratch {
    x_decode: DecoderScratch,
    z_decode: DecoderScratch,
    x_error: Vec<bool>,
    z_error: Vec<bool>,
    syndrome: Vec<bool>,
    residual: Vec<bool>,
}

impl ShotScratch {
    /// Creates an empty workspace; buffers are sized on first shot.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Precomputed corrections for every weight-1 syndrome of one decode context.
///
/// A weight-1 syndrome under measurement noise is overwhelmingly a single
/// measurement-check flip — a "re-measure" event whose correction is known in
/// advance — and when it is instead caused by a data error whose column is that
/// unit vector, the table entry covers that case too, because every entry is
/// built by running the real sector decode on the single-bit syndrome `e_r`.
/// Decoding is a pure function of `(matrix, priors, syndrome)`, so the table
/// lookup is bit-identical to a live decode while bypassing BP *and* OSD.
#[derive(Debug, Clone, Default)]
struct Weight1Table {
    /// Context tag the table was built for (same identity as [`DecodeCache`]).
    tag: u64,
    /// Words per packed correction row.
    corr_words: usize,
    /// Number of checks (rows of the table).
    rows: usize,
    /// `rows × corr_words` packed corrections, check-major.
    corr: Vec<u64>,
    /// Whether the table holds corrections for the bound context.
    built: bool,
}

/// Aggregate decode-resolution counters of one [`BatchScratch`], accumulated
/// since the scratch was created (never reset by context rebinds): how active
/// lanes were resolved. `decoded` counts full BP(+OSD) decodes — i.e. lanes not
/// served by the weight-1 table or the decode cache — and `osd_fallbacks` the
/// subset that needed the OSD stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Active (non-zero-syndrome) lanes seen.
    pub active_lanes: u64,
    /// Lanes resolved by the weight-1 fast-path table.
    pub weight1_hits: u64,
    /// Lanes that ran a full decode (cache and weight-1 misses).
    pub decoded: u64,
    /// Full decodes that fell through BP to the OSD stage.
    pub osd_fallbacks: u64,
}

/// One sector's decode state in a [`BatchScratch`]: the decoder scratch, the
/// per-syndrome cache, and the weight-1 fast-path table.
#[derive(Debug, Clone, Default)]
struct SectorBatch {
    decode: DecoderScratch,
    cache: DecodeCache,
    w1: Weight1Table,
}

/// The lane (de)packing buffers shared by both sectors of a batch decode.
#[derive(Debug, Clone, Default)]
struct LaneBuffers {
    /// Per-sector syndrome words, check-major (reused across sectors).
    syn_words: Vec<u64>,
    /// Correction words, qubit-major (reused across sectors).
    corr_words: Vec<u64>,
    /// One shot's unpacked syndrome (decoder input on a cache miss).
    syndrome: Vec<bool>,
    /// One shot's syndrome packed 64-checks-per-word (decode-cache key).
    syn_pack: Vec<u64>,
    /// One shot's correction packed 64-qubits-per-word (decode-cache value).
    corr_pack: Vec<u64>,
}

/// Per-worker workspace of the bit-sliced batch sampler
/// ([`MemoryExperiment::sample_batch_with`]): 64 shots travel together, one bit
/// per `u64` lane, so error patterns, measurement flips, syndromes, corrections,
/// and logical-failure parities are all held column-major as words. Buffers are
/// sized on the first batch and reused — zero heap allocation in steady state —
/// and each sector keeps its own [`DecoderScratch`], [`DecodeCache`], and
/// weight-1 fast-path table.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    x: SectorBatch,
    z: SectorBatch,
    /// X-frame error words, qubit-major: bit `k` of `[q]` = shot `k` has an X at `q`.
    x_err_words: Vec<u64>,
    /// Z-frame error words, qubit-major.
    z_err_words: Vec<u64>,
    /// Measurement-flip words for the X-sector checks (head of the channel's
    /// check-major layout), check-major.
    xflip_words: Vec<u64>,
    /// Measurement-flip words for the Z-sector checks (tail), check-major.
    zflip_words: Vec<u64>,
    /// Shared lane (de)packing buffers.
    lanes: LaneBuffers,
    /// Decode-resolution counters (monotone over the scratch's lifetime).
    stats: BatchStats,
}

impl BatchScratch {
    /// Creates an empty workspace; buffers are sized on the first batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode-cache hit/miss totals over both sectors since the caches were last
    /// bound (telemetry for benches and tests).
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.x.cache.hits() + self.z.cache.hits(),
            self.x.cache.misses() + self.z.cache.misses(),
        )
    }

    /// Conflict-eviction total over both sector caches since their last bind.
    pub fn cache_evictions(&self) -> u64 {
        self.x.cache.evictions() + self.z.cache.evictions()
    }

    /// Decode-resolution counters accumulated since the scratch was created.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }
}

/// A logical-memory experiment for one code under one hardware noise model and one
/// per-qubit [`ErrorChannel`].
#[derive(Debug)]
pub struct MemoryExperiment<'a> {
    code: &'a CssCode,
    model: HardwareNoiseModel,
    /// The per-qubit channel driving the sampler. Defaults to the uniform channel
    /// at the model's effective error rate, which reproduces the historical scalar
    /// path bit-for-bit.
    channel: ErrorChannel,
    /// Per-bit decoder priors: the channel's data rates clamped to the decoder's
    /// numerically safe range (rebuilt whenever the channel changes).
    priors: Vec<f64>,
    /// Content digest of `priors` ([`crate::bp::priors_digest`]), precomputed at
    /// rebuild so every structured-channel decode hits the priors-LLR cache with a
    /// single `u64` compare.
    priors_key: u64,
    x_decoder: BpOsdDecoder,
    z_decoder: BpOsdDecoder,
    /// Supports of the logical X operators (flagging Z-sector failures), flattened
    /// once so the batch path computes logical parities word-at-a-time.
    logical_x_supports: Vec<Vec<usize>>,
    /// Supports of the logical Z operators (flagging X-sector failures).
    logical_z_supports: Vec<Vec<usize>>,
    /// Decode-context base tag of the X-sector decoder (content digest of `Hz` +
    /// BP iteration cap); mixed with the priors identity to bind a [`DecodeCache`].
    x_ctx: u64,
    /// Decode-context base tag of the Z-sector decoder (`Hx` + cap).
    z_ctx: u64,
    /// Directory for persisted decode caches: when set, every Monte-Carlo worker
    /// loads matching per-sector cache files at startup and stores its caches
    /// back when it finishes (see [`MemoryExperiment::set_decode_cache_dir`]).
    decode_cache_dir: Option<PathBuf>,
}

/// Flattens logical operators from dense masks to index supports.
fn supports_of(ops: &[Vec<bool>]) -> Vec<Vec<usize>> {
    ops.iter()
        .map(|op| {
            op.iter()
                .enumerate()
                .filter_map(|(q, &on)| on.then_some(q))
                .collect()
        })
        .collect()
}

/// Content digest of a parity-check matrix plus the BP iteration cap: the part of
/// a decode context that is fixed at decoder construction. Two decoders with equal
/// matrices and caps compute identical corrections, so tagging by content (not
/// identity) lets a [`DecodeCache`] survive experiment rebuilds over the same code.
fn matrix_tag(h: &BitMat, bp_iterations: usize) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(h.num_rows() as u64);
    eat(h.num_cols() as u64);
    eat(bp_iterations as u64);
    for r in 0..h.num_rows() {
        for &w in h.row_words(r) {
            eat(w);
        }
    }
    hash
}

/// Mixes a decode-context base tag with the priors identity of the current channel.
fn mix_ctx(base: u64, prior_bits: u64) -> u64 {
    let mut hash = base ^ prior_bits;
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash
}

impl<'a> MemoryExperiment<'a> {
    /// Builds the experiment (constructing BP+OSD decoders for both sectors) with
    /// the uniform channel at the model's effective error rate.
    pub fn new(code: &'a CssCode, model: HardwareNoiseModel, bp_iterations: usize) -> Self {
        let mut exp = MemoryExperiment {
            code,
            model,
            channel: ErrorChannel::uniform(code.num_qubits(), model.effective_error_rate()),
            priors: Vec::new(),
            priors_key: 0,
            // Hx detects Z errors; Hz detects X errors.
            x_decoder: BpOsdDecoder::new(code.hz(), bp_iterations),
            z_decoder: BpOsdDecoder::new(code.hx(), bp_iterations),
            logical_x_supports: supports_of(code.logical_x()),
            logical_z_supports: supports_of(code.logical_z()),
            x_ctx: matrix_tag(code.hz(), bp_iterations),
            z_ctx: matrix_tag(code.hx(), bp_iterations),
            decode_cache_dir: None,
        };
        exp.rebuild_priors();
        exp
    }

    /// Builds the experiment with an explicit channel (see
    /// [`MemoryExperiment::set_channel`]).
    pub fn with_channel(
        code: &'a CssCode,
        model: HardwareNoiseModel,
        channel: ErrorChannel,
        bp_iterations: usize,
    ) -> Self {
        let mut exp = Self::new(code, model, bp_iterations);
        exp.set_channel(channel);
        exp
    }

    /// Replaces the noise model, keeping the (expensive-to-build) sector decoders.
    /// The channel is reset to the uniform channel of the new model — a previous
    /// [`set_channel`](MemoryExperiment::set_channel) never leaks across points.
    ///
    /// Latency and error-rate sweeps over one code should construct a single
    /// experiment and call this between points instead of rebuilding everything.
    pub fn set_model(&mut self, model: HardwareNoiseModel) {
        self.model = model;
        self.set_channel(ErrorChannel::uniform(
            self.code.num_qubits(),
            model.effective_error_rate(),
        ));
    }

    /// Replaces the per-qubit error channel, keeping model and decoders.
    ///
    /// # Panics
    ///
    /// Panics if the channel's data length differs from the code's qubit count, or
    /// a non-empty measurement vector differs from the code's check count
    /// (X-sector checks then Z-sector, see `noise::channel`).
    pub fn set_channel(&mut self, channel: ErrorChannel) {
        assert_eq!(
            channel.num_data(),
            self.code.num_qubits(),
            "channel sized for a different code"
        );
        assert!(
            !channel.has_measurement_noise()
                || channel.measurement().len() == self.code.num_stabilizers(),
            "channel has {} measurement checks, code has {}",
            channel.measurement().len(),
            self.code.num_stabilizers()
        );
        self.channel = channel;
        self.rebuild_priors();
    }

    /// The channel currently driving the sampler.
    pub fn channel(&self) -> &ErrorChannel {
        &self.channel
    }

    /// Sets (or clears) the persistent decode-cache directory. When set, every
    /// worker of [`run`](MemoryExperiment::run) and
    /// [`run_adaptive_batched`](MemoryExperiment::run_adaptive_batched) loads
    /// matching per-sector cache files before sampling and stores its caches
    /// back afterwards (atomic rename, last writer wins — every complete file is
    /// valid, entries are pure decoder outputs). Files are keyed by code label,
    /// sector, and the full decode-context digest (matrix + BP cap + priors), so
    /// a stale or foreign file can never contribute an entry; deleting the
    /// directory at any time only costs warm-up misses.
    pub fn set_decode_cache_dir(&mut self, dir: Option<PathBuf>) {
        self.decode_cache_dir = dir;
    }

    /// The current per-sector decode-context tags `(x, z)`: the matrix digests
    /// mixed with the active channel's priors identity. This is the identity
    /// under which [`DecodeCache`]s bind and persisted cache files are named.
    fn sector_contexts(&self) -> (u64, u64) {
        let prior_bits = match self.channel.uniform_rate() {
            Some(p) => p.clamp(1e-9, 0.45).to_bits(),
            None => self.priors_key,
        };
        (
            mix_ctx(self.x_ctx, prior_bits),
            mix_ctx(self.z_ctx, prior_bits),
        )
    }

    /// The persisted-cache file path of one sector context inside `dir`.
    fn decode_cache_path(&self, dir: &Path, sector: char, ctx: u64) -> PathBuf {
        let label: String = self
            .code
            .descriptor()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        dir.join(format!(
            "decode-{}-{sector}-{ctx:016x}.json",
            label.trim_matches('-')
        ))
    }

    /// Binds both sector caches of `batch` to the experiment's current decode
    /// contexts and loads any matching persisted cache files from `dir`.
    /// Returns the number of entries admitted (0 when no file matches — a
    /// persisted cache is an accelerator, never a correctness input).
    pub fn load_decode_caches(&self, dir: &Path, batch: &mut BatchScratch) -> usize {
        let n = self.code.num_qubits();
        let (x_ctx, z_ctx) = self.sector_contexts();
        let mut loaded = 0;
        let m_x = self.x_decoder.check_matrix().num_rows();
        batch.x.cache.ensure(x_ctx, m_x, n);
        loaded += batch
            .x
            .cache
            .load_from(&self.decode_cache_path(dir, 'x', x_ctx));
        let m_z = self.z_decoder.check_matrix().num_rows();
        batch.z.cache.ensure(z_ctx, m_z, n);
        loaded += batch
            .z
            .cache
            .load_from(&self.decode_cache_path(dir, 'z', z_ctx));
        loaded
    }

    /// Stores both sector caches of `batch` (those bound and non-empty) into
    /// `dir`, creating it if needed. Each file is published with an atomic
    /// temp-file + rename, so concurrent workers never tear a file — the last
    /// complete writer wins, and any complete file is valid.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error from creating the directory or writing a file.
    pub fn store_decode_caches(&self, dir: &Path, batch: &BatchScratch) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let (x_ctx, z_ctx) = self.sector_contexts();
        if !batch.x.cache.is_empty() {
            batch
                .x
                .cache
                .save_to(&self.decode_cache_path(dir, 'x', x_ctx))?;
        }
        if !batch.z.cache.is_empty() {
            batch
                .z
                .cache
                .save_to(&self.decode_cache_path(dir, 'z', z_ctx))?;
        }
        Ok(())
    }

    fn rebuild_priors(&mut self) {
        self.priors.clear();
        self.priors
            .extend(self.channel.data().iter().map(|&p| p.clamp(1e-9, 0.45)));
        self.priors_key = crate::bp::priors_digest(&self.priors);
    }

    /// The effective per-qubit, per-round error rate driving the sampling.
    pub fn effective_error_rate(&self) -> f64 {
        self.model.effective_error_rate()
    }

    /// Runs one shot with the given RNG; returns `true` when a logical error occurred.
    ///
    /// Allocating convenience wrapper around [`MemoryExperiment::sample_one_with`].
    pub fn sample_one<R: Rng>(&self, rng: &mut R) -> bool {
        self.sample_one_with(rng, &mut ShotScratch::new())
    }

    /// Runs one shot with the given RNG, borrowing all working buffers from
    /// `scratch`; returns `true` when a logical error occurred. In steady state
    /// (after the first shot has sized the buffers) this performs no heap allocation.
    ///
    /// With the uniform channel this is the historical scalar path — same RNG
    /// stream, same cached-LLR `decode_into` — bit for bit. A structured channel
    /// samples each data qubit at its own rate, flips extracted syndrome bits at
    /// the channel's measurement rates, and decodes with matching per-bit priors
    /// via `decode_with_priors_into`.
    // cyclone-lint: hot-path
    pub fn sample_one_with<R: Rng>(&self, rng: &mut R, scratch: &mut ShotScratch) -> bool {
        let n = self.code.num_qubits();
        let uniform = self.channel.uniform_rate();
        // Depolarizing channel: X, Y, Z each with p/3. X-frame = X or Y; Z-frame = Z or Y.
        scratch.x_error.clear();
        scratch.x_error.resize(n, false);
        scratch.z_error.clear();
        scratch.z_error.resize(n, false);
        // Rates arrive pre-validated: `ErrorChannel::from_rates` saturates at the
        // depolarizing maximum once, at construction, with `saturated()` recording
        // the fact — no silent per-draw clamp here.
        match uniform {
            Some(p) => {
                for q in 0..n {
                    if rng.gen_bool(p) {
                        depolarize(rng, scratch, q);
                    }
                }
            }
            None => {
                for (q, &pq) in self.channel.data().iter().enumerate() {
                    if rng.gen_bool(pq) {
                        depolarize(rng, scratch, q);
                    }
                }
            }
        }
        // Measurement flip rates per sector: the X decoder consumes Z-stabilizer
        // checks (rows of Hz, the tail of the channel's check-major layout), the Z
        // decoder consumes X-stabilizer checks (the head).
        let (x_check_rates, z_check_rates) = if self.channel.has_measurement_noise() {
            let split = self.code.num_x_stabilizers();
            let m = self.channel.measurement();
            (&m[..split], &m[split..])
        } else {
            (&[] as &[f64], &[] as &[f64])
        };
        // X errors are detected by Z stabilizers and corrected by the X decoder.
        self.x_decoder
            .check_matrix()
            .syndrome_into(&scratch.x_error, &mut scratch.syndrome);
        flip_syndrome(rng, &mut scratch.syndrome, z_check_rates);
        self.decode_sector(
            &self.x_decoder,
            uniform,
            &scratch.syndrome,
            &mut scratch.x_decode,
        );
        xor_into(
            &scratch.x_error,
            scratch.x_decode.error(),
            &mut scratch.residual,
        );
        if self.code.x_error_is_logical(&scratch.residual) {
            return true;
        }
        // Z errors are detected by X stabilizers.
        self.z_decoder
            .check_matrix()
            .syndrome_into(&scratch.z_error, &mut scratch.syndrome);
        flip_syndrome(rng, &mut scratch.syndrome, x_check_rates);
        self.decode_sector(
            &self.z_decoder,
            uniform,
            &scratch.syndrome,
            &mut scratch.z_decode,
        );
        xor_into(
            &scratch.z_error,
            scratch.z_decode.error(),
            &mut scratch.residual,
        );
        self.code.z_error_is_logical(&scratch.residual)
    }

    /// One sector decode: the uniform channel keeps the cached-LLR scalar path,
    /// structured channels pass the per-bit priors. Returns the decode status
    /// (which stage resolved the syndrome) for fallback-rate telemetry.
    fn decode_sector(
        &self,
        decoder: &BpOsdDecoder,
        uniform: Option<f64>,
        syndrome: &[bool],
        scratch: &mut DecoderScratch,
    ) -> crate::bposd::DecodeStatus {
        match uniform {
            Some(p) => decoder.decode_into(syndrome, p.clamp(1e-9, 0.45), scratch),
            None => decoder.decode_with_priors_keyed_into(
                syndrome,
                &self.priors,
                self.priors_key,
                scratch,
            ),
        }
    }

    /// Samples and decodes up to 64 Monte-Carlo shots at once, bit-sliced one shot
    /// per `u64` lane; returns the failure mask (bit `k` set iff shot
    /// `first_shot + k` suffered a logical error). `count` must be in `1..=64`.
    ///
    /// Bit-identical to running [`MemoryExperiment::sample_one_with`] per shot:
    /// every shot draws from its own seeded stream
    /// (`config.shot_seed(first_shot + k)`) in exactly the scalar order — data
    /// qubits, then Z-sector measurement flips, then X-sector flips. (The scalar
    /// path skips the X-sector flips when the X sector already failed; drawing
    /// them here is harmless because nothing ever consumes the remainder of a
    /// shot's stream.) Syndrome extraction, measurement flips, and
    /// logical-failure parities are all word-level; BP+OSD runs only for lanes
    /// with a non-trivial syndrome (a zero syndrome provably decodes to the zero
    /// correction under the clamped priors), and repeated syndromes are served
    /// from a per-sector [`DecodeCache`] whose entries store the exact decoder
    /// output — so failures never depend on batch size, lane order, or cache
    /// state. In steady state the batch performs zero heap allocations.
    pub fn sample_batch_with(
        &self,
        config: &MemoryConfig,
        first_shot: usize,
        count: usize,
        batch: &mut BatchScratch,
    ) -> u64 {
        assert!(
            (1..=64).contains(&count),
            "batch holds 1..=64 shots, got {count}"
        );
        let n = self.code.num_qubits();
        let uniform = self.channel.uniform_rate();
        batch.x_err_words.clear();
        batch.x_err_words.resize(n, 0);
        batch.z_err_words.clear();
        batch.z_err_words.resize(n, 0);
        let (x_check_rates, z_check_rates) = if self.channel.has_measurement_noise() {
            let split = self.code.num_x_stabilizers();
            let m = self.channel.measurement();
            (&m[..split], &m[split..])
        } else {
            (&[] as &[f64], &[] as &[f64])
        };
        batch.xflip_words.clear();
        batch.xflip_words.resize(x_check_rates.len(), 0);
        batch.zflip_words.clear();
        batch.zflip_words.resize(z_check_rates.len(), 0);
        for k in 0..count {
            let lane = 1u64 << k;
            let mut rng = StdRng::seed_from_u64(config.shot_seed(first_shot + k));
            match uniform {
                Some(p) => {
                    for q in 0..n {
                        if rng.gen_bool(p) {
                            depolarize_words(&mut rng, batch, q, lane);
                        }
                    }
                }
                None => {
                    for (q, &pq) in self.channel.data().iter().enumerate() {
                        if rng.gen_bool(pq) {
                            depolarize_words(&mut rng, batch, q, lane);
                        }
                    }
                }
            }
            // Scalar draw order: the Z-sector check flips (consumed by the X
            // sector's syndrome) come first, then the X-sector check flips.
            for (r, &p) in z_check_rates.iter().enumerate() {
                if rng.gen_bool(p) {
                    batch.zflip_words[r] |= lane;
                }
            }
            for (r, &p) in x_check_rates.iter().enumerate() {
                if rng.gen_bool(p) {
                    batch.xflip_words[r] |= lane;
                }
            }
        }
        let prior_bits = match uniform {
            Some(p) => p.clamp(1e-9, 0.45).to_bits(),
            None => self.priors_key,
        };
        // X errors are detected by Z stabilizers and corrected by the X decoder;
        // a residual logical X anticommutes with some logical Z.
        let fail_x = self.batch_decode_sector(
            &self.x_decoder,
            uniform,
            mix_ctx(self.x_ctx, prior_bits),
            &batch.x_err_words,
            &batch.zflip_words,
            &self.logical_z_supports,
            &mut batch.lanes,
            &mut batch.x,
            &mut batch.stats,
        );
        let fail_z = self.batch_decode_sector(
            &self.z_decoder,
            uniform,
            mix_ctx(self.z_ctx, prior_bits),
            &batch.z_err_words,
            &batch.xflip_words,
            &self.logical_x_supports,
            &mut batch.lanes,
            &mut batch.z,
            &mut batch.stats,
        );
        let mask = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        (fail_x | fail_z) & mask
    }

    /// One sector of the batch path: word-level syndrome extraction and
    /// measurement flips, weight-1-table and cache-backed decoding of the active
    /// lanes, and word-level logical-failure parities. Returns the sector's
    /// failure mask.
    #[allow(clippy::too_many_arguments)]
    fn batch_decode_sector(
        &self,
        decoder: &BpOsdDecoder,
        uniform: Option<f64>,
        ctx: u64,
        err_words: &[u64],
        flip_words: &[u64],
        logicals: &[Vec<usize>],
        lanes: &mut LaneBuffers,
        sector: &mut SectorBatch,
        stats: &mut BatchStats,
    ) -> u64 {
        let n = err_words.len();
        let h = decoder.check_matrix();
        let m = h.num_rows();
        h.syndrome_words_into(err_words, &mut lanes.syn_words);
        if !flip_words.is_empty() {
            debug_assert_eq!(flip_words.len(), m, "one flip word per check");
            for (s, &f) in lanes.syn_words.iter_mut().zip(flip_words) {
                *s ^= f;
            }
        }
        lanes.corr_words.clear();
        lanes.corr_words.resize(n, 0);
        // Lanes with an all-zero syndrome decode to the zero correction for free.
        let mut active: u64 = lanes.syn_words.iter().fold(0, |acc, &w| acc | w);
        if active != 0 {
            sector.cache.ensure(ctx, m, n);
            // Measurement noise makes weight-1 syndromes the dominant non-trivial
            // case; precompute their corrections once per context. (Uniform
            // channels skip the table: weight-1 syndromes are rare there and the
            // m warm-up decodes would not pay for themselves.)
            if !flip_words.is_empty() {
                self.ensure_weight1(decoder, uniform, ctx, lanes, sector);
            }
            let syn_len = m.div_ceil(64).max(1);
            let corr_len = n.div_ceil(64).max(1);
            while active != 0 {
                let k = active.trailing_zeros() as usize;
                active &= active - 1;
                let lane = 1u64 << k;
                stats.active_lanes += 1;
                // Unpack lane k's syndrome: bools for the decoder, packed words
                // for the cache key, and its weight for the fast path.
                lanes.syn_pack.clear();
                lanes.syn_pack.resize(syn_len, 0);
                lanes.syndrome.clear();
                let mut weight = 0u32;
                for (r, &w) in lanes.syn_words.iter().enumerate() {
                    let bit = (w >> k) & 1 == 1;
                    lanes.syndrome.push(bit);
                    if bit {
                        lanes.syn_pack[r >> 6] |= 1 << (r & 63);
                        weight += 1;
                    }
                }
                // Weight-1 fast path: scatter the precomputed correction row —
                // bit-identical to a live decode because the row *is* one.
                if weight == 1 && sector.w1.built {
                    let r = lanes
                        .syndrome
                        .iter()
                        .position(|&b| b)
                        .expect("weight-1 syndrome has a set bit");
                    let row = &sector.w1.corr[r * sector.w1.corr_words..];
                    for (wi, &w) in row[..sector.w1.corr_words].iter().enumerate() {
                        let mut bits = w;
                        while bits != 0 {
                            let q = (wi << 6) + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            lanes.corr_words[q] |= lane;
                        }
                    }
                    stats.weight1_hits += 1;
                    continue;
                }
                let mut hit = false;
                if let Some(stored) = sector.cache.lookup(&lanes.syn_pack) {
                    for (wi, &w) in stored.iter().enumerate() {
                        let mut bits = w;
                        while bits != 0 {
                            let q = (wi << 6) + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            lanes.corr_words[q] |= lane;
                        }
                    }
                    hit = true;
                }
                if hit {
                    continue;
                }
                let status =
                    self.decode_sector(decoder, uniform, &lanes.syndrome, &mut sector.decode);
                stats.decoded += 1;
                if status.method == DecodeMethod::OrderedStatistics {
                    stats.osd_fallbacks += 1;
                }
                lanes.corr_pack.clear();
                lanes.corr_pack.resize(corr_len, 0);
                for (q, &e) in sector.decode.error().iter().enumerate() {
                    if e {
                        lanes.corr_pack[q >> 6] |= 1 << (q & 63);
                        lanes.corr_words[q] |= lane;
                    }
                }
                sector.cache.insert(&lanes.syn_pack, &lanes.corr_pack);
            }
        }
        let mut fail = 0u64;
        for support in logicals {
            let mut parity = 0u64;
            for &q in support {
                parity ^= err_words[q] ^ lanes.corr_words[q];
            }
            fail |= parity;
        }
        fail
    }
    // cyclone-lint: end-hot-path

    /// Builds (or rebinds) one sector's weight-1 correction table: for every
    /// check `r`, run the real sector decode on the single-bit syndrome `e_r`
    /// and pack the resulting correction. Runs once per decode context per
    /// worker (outside the steady state: storage is sized here, and re-binding
    /// to the same context is a tag compare).
    fn ensure_weight1(
        &self,
        decoder: &BpOsdDecoder,
        uniform: Option<f64>,
        ctx: u64,
        lanes: &mut LaneBuffers,
        sector: &mut SectorBatch,
    ) {
        let m = decoder.check_matrix().num_rows();
        let n = self.code.num_qubits();
        let corr_len = n.div_ceil(64).max(1);
        let w1 = &mut sector.w1;
        if w1.built && w1.tag == ctx && w1.rows == m && w1.corr_words == corr_len {
            return;
        }
        w1.tag = ctx;
        w1.rows = m;
        w1.corr_words = corr_len;
        w1.corr.clear();
        w1.corr.resize(m * corr_len, 0);
        for r in 0..m {
            lanes.syndrome.clear();
            lanes.syndrome.resize(m, false);
            lanes.syndrome[r] = true;
            self.decode_sector(decoder, uniform, &lanes.syndrome, &mut sector.decode);
            let row = &mut w1.corr[r * corr_len..(r + 1) * corr_len];
            for (q, &e) in sector.decode.error().iter().enumerate() {
                if e {
                    row[q >> 6] |= 1 << (q & 63);
                }
            }
        }
        w1.built = true;
    }

    /// Runs the full Monte-Carlo experiment in parallel and returns the LER estimate.
    ///
    /// Each shot is seeded independently from [`MemoryConfig::seed`], so the estimate
    /// is bit-identical for every `threads` setting (workers pull 64-shot batches
    /// from a shared counter purely for load balancing, and the bit-sliced batch
    /// path is bit-identical to the scalar per-shot path). Every worker owns one
    /// [`BatchScratch`], so sampling allocates only at worker startup, never per
    /// shot.
    pub fn run(&self, config: &MemoryConfig) -> LerEstimate {
        // A zero-shot configuration yields the explicit empty estimate instead of
        // fabricating a phantom 1-shot zero-failure floor.
        if config.shots == 0 {
            return LerEstimate::empty();
        }
        let workers = config.worker_count().max(1);
        let shots = config.shots;
        let chunks = shots.div_ceil(64);
        let failures = AtomicUsize::new(0);
        let next_chunk = AtomicUsize::new(0);
        // Warm-up: on structured channels, pre-seed the decode caches by
        // sampling a short shot prefix once on a single scratch, so the
        // compulsory misses of the hottest syndromes (and the weight-1 table
        // builds) are paid once instead of once per worker — every worker then
        // starts from a *clone* of the warm scratch. Masks are discarded and
        // the workers re-sample the prefix from the same per-shot RNG streams,
        // so failure counting and bit-identity are untouched: cache entries are
        // pure decoder outputs. Skipped for uniform channels (no decode cache
        // on that path) and for runs too small to amortize the replay.
        let warm = (self.channel.has_measurement_noise()
            && shots > DECODE_WARMUP_SHOTS
            && (workers > 1 || self.decode_cache_dir.is_some()))
        .then(|| {
            let mut batch = BatchScratch::new();
            if let Some(dir) = &self.decode_cache_dir {
                self.load_decode_caches(dir, &mut batch);
            }
            let mut start = 0;
            while start < DECODE_WARMUP_SHOTS {
                let count = 64.min(DECODE_WARMUP_SHOTS - start);
                let _ = self.sample_batch_with(config, start, count, &mut batch);
                start += count;
            }
            if let Some(dir) = &self.decode_cache_dir {
                // Best-effort, like the per-worker store below.
                let _ = self.store_decode_caches(dir, &batch);
            }
            batch
        });
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut batch = match &warm {
                        Some(warm) => warm.clone(),
                        None => BatchScratch::new(),
                    };
                    if warm.is_none() {
                        if let Some(dir) = &self.decode_cache_dir {
                            self.load_decode_caches(dir, &mut batch);
                        }
                    }
                    let mut local_failures = 0usize;
                    loop {
                        let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if chunk >= chunks {
                            break;
                        }
                        let start = chunk * 64;
                        let count = 64.min(shots - start);
                        let mask = self.sample_batch_with(config, start, count, &mut batch);
                        local_failures += mask.count_ones() as usize;
                    }
                    if let Some(dir) = &self.decode_cache_dir {
                        // Persistence is best-effort: a read-only directory must
                        // not fail the estimate.
                        let _ = self.store_decode_caches(dir, &batch);
                    }
                    failures.fetch_add(local_failures, Ordering::Relaxed);
                });
            }
        });
        LerEstimate::from_counts(shots, failures.load(Ordering::Relaxed))
    }

    /// Runs an adaptive (stop-at-precision) Monte-Carlo experiment with the default
    /// execution batch size ([`ADAPTIVE_BATCH`]).
    ///
    /// Shots use exactly the per-shot RNG streams of [`MemoryExperiment::run`]
    /// (derived from [`MemoryConfig::seed`]), and the run stops at the smallest shot
    /// count meeting `target` (see [`PrecisionTarget`]), capped by
    /// `target.max_shots`. The returned estimate is therefore bit-identical to a
    /// fixed-budget [`run`](MemoryExperiment::run) of the same shot count — the
    /// adaptive path only *chooses* the budget, it never changes the sample.
    /// `config.shots` is ignored; `config.threads` parallelizes within each batch.
    pub fn run_adaptive(&self, config: &MemoryConfig, target: &PrecisionTarget) -> LerEstimate {
        self.run_adaptive_batched(config, target, ADAPTIVE_BATCH)
    }

    /// [`run_adaptive`](MemoryExperiment::run_adaptive) with an explicit initial
    /// execution batch size.
    ///
    /// Batching only controls how many shots are sampled between stop-rule
    /// evaluations — the stopping decision is made on per-shot prefixes of the
    /// batch, so the result is bit-identical for every `batch` and every
    /// `config.threads` setting. Batches grow geometrically (doubling up to
    /// [`ADAPTIVE_BATCH_CAP`]) so a cap-bound point pays O(log) batch handoffs
    /// instead of one per `batch` shots.
    pub fn run_adaptive_batched(
        &self,
        config: &MemoryConfig,
        target: &PrecisionTarget,
        batch: usize,
    ) -> LerEstimate {
        let max_shots = target.max_shots;
        if max_shots == 0 {
            return LerEstimate::empty();
        }
        let mut batch = batch.max(1);
        let workers = config.worker_count().max(1);
        let mut done = 0usize;
        let mut failures = 0usize;
        let mut scratch = BatchScratch::new();
        if let Some(dir) = &self.decode_cache_dir {
            self.load_decode_caches(dir, &mut scratch);
        }
        let mut flags: Vec<AtomicBool> = Vec::new();
        let mut result = None;
        'sampling: while done < max_shots {
            let n = batch.min(max_shots - done);
            batch = batch.saturating_mul(2).min(ADAPTIVE_BATCH_CAP);
            if workers == 1 {
                // Single-worker fast path: sample bit-sliced 64-shot chunks but
                // still evaluate the stop rule after every shot — the decision
                // uses only the per-shot prefix, so stopping mid-chunk discards
                // already-sampled lanes without affecting the returned estimate.
                let mut off = 0usize;
                while off < n {
                    let c = 64.min(n - off);
                    let mask = self.sample_batch_with(config, done + off, c, &mut scratch);
                    for k in 0..c {
                        if (mask >> k) & 1 == 1 {
                            failures += 1;
                        }
                        if target.met_by(done + off + k + 1, failures) {
                            result = Some(LerEstimate::from_counts(done + off + k + 1, failures));
                            break 'sampling;
                        }
                    }
                    off += c;
                }
            } else {
                // Sample the whole batch in parallel (each 64-shot chunk owns its
                // seeded streams and disjoint flag slots), then scan the flags in
                // shot order for the earliest prefix meeting the target.
                flags.clear();
                flags.resize_with(n, || AtomicBool::new(false));
                let chunks = n.div_ceil(64);
                let next = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| {
                            let mut batch = BatchScratch::new();
                            if let Some(dir) = &self.decode_cache_dir {
                                self.load_decode_caches(dir, &mut batch);
                            }
                            loop {
                                let chunk = next.fetch_add(1, Ordering::Relaxed);
                                if chunk >= chunks {
                                    break;
                                }
                                let start = chunk * 64;
                                let c = 64.min(n - start);
                                let mask =
                                    self.sample_batch_with(config, done + start, c, &mut batch);
                                for k in 0..c {
                                    if (mask >> k) & 1 == 1 {
                                        flags[start + k].store(true, Ordering::Relaxed);
                                    }
                                }
                            }
                            if let Some(dir) = &self.decode_cache_dir {
                                let _ = self.store_decode_caches(dir, &batch);
                            }
                        });
                    }
                });
                for (k, flag) in flags.iter().enumerate() {
                    if flag.load(Ordering::Relaxed) {
                        failures += 1;
                    }
                    if target.met_by(done + k + 1, failures) {
                        result = Some(LerEstimate::from_counts(done + k + 1, failures));
                        break 'sampling;
                    }
                }
            }
            done += n;
        }
        if let Some(dir) = &self.decode_cache_dir {
            // Best-effort: the single-worker scratch accumulated this run's
            // syndromes (multi-worker rounds stored theirs per worker above).
            let _ = self.store_decode_caches(dir, &scratch);
        }
        result.unwrap_or_else(|| LerEstimate::from_counts(done, failures))
    }
}

/// Shot-prefix length of the structured-channel decode-cache warm-up in
/// [`MemoryExperiment::run`]: three 64-shot batches, enough to populate the
/// caches with the hottest low-weight syndromes (and build the weight-1 tables)
/// before the worker pool fans out, small enough that replaying the prefix is
/// noise. Warm-up never affects results — cache entries are pure decoder
/// outputs and the workers re-sample the prefix from the same per-shot RNG
/// streams.
pub const DECODE_WARMUP_SHOTS: usize = 192;

/// Default initial execution batch size of [`MemoryExperiment::run_adaptive`]:
/// large enough to amortize thread handoffs, small enough that a high-failure point
/// stops within a few batches. Batch sizes never affect results, only scheduling.
pub const ADAPTIVE_BATCH: usize = 256;

/// Ceiling of the geometric batch growth in
/// [`MemoryExperiment::run_adaptive_batched`]: bounds both the flag-buffer size
/// and the shots sampled past a satisfiable stopping point.
pub const ADAPTIVE_BATCH_CAP: usize = 16_384;

/// One operating point of a logical-error-rate sweep: a code evaluated at physical
/// error rate `p` with a syndrome-extraction round latency of `latency` seconds,
/// optionally under a structured error channel.
#[derive(Debug, Clone, Copy)]
pub struct LerPoint<'a> {
    /// The code under test.
    pub code: &'a CssCode,
    /// Physical error rate.
    pub p: f64,
    /// Round latency in seconds (drives the decoherence contribution).
    pub latency: f64,
    /// How the hardware model is lifted to a per-qubit channel: `None` (or
    /// [`ChannelSpec::Uniform`]) is the historical scalar path, bit for bit.
    pub channel: Option<&'a ChannelSpec>,
}

/// Estimates every point of a sweep across a shared worker pool at *point*
/// granularity, returning the estimates in input order.
///
/// This is the parallel primitive under the `cyclone::sweep` engine: sweeps are
/// embarrassingly parallel across operating points, so instead of parallelizing the
/// shots *within* one point (as [`MemoryExperiment::run`] does) the pool runs whole
/// points concurrently, each single-threaded. Every point is evaluated exactly as
/// [`logical_error_rate`] would — same shot count, same per-shot RNG streams derived
/// from [`MemoryConfig::seed`] — so the result vector is bit-identical to the serial
/// loop at every worker count.
///
/// Workers reuse one [`MemoryExperiment`] (the expensive-to-build sector decoder
/// pair) per distinct code, moving it between operating points with
/// [`MemoryExperiment::set_model`]. `config.threads` sizes the pool (0 = available
/// parallelism, capped at 16).
pub fn estimate_points(points: &[LerPoint<'_>], config: &MemoryConfig) -> Vec<LerEstimate> {
    estimate_points_adaptive(points, &vec![None; points.len()], config)
}

/// [`estimate_points`] with an optional [`PrecisionTarget`] per point: `None` runs
/// the fixed `config.shots` budget exactly as before; `Some(target)` samples the
/// point adaptively (stop at precision, capped by `target.max_shots`, see
/// [`MemoryExperiment::run_adaptive`]). Fixed and adaptive points may be mixed in
/// one call and share the pool.
///
/// # Panics
///
/// Panics if `targets` is not exactly one entry per point.
pub fn estimate_points_adaptive(
    points: &[LerPoint<'_>],
    targets: &[Option<PrecisionTarget>],
    config: &MemoryConfig,
) -> Vec<LerEstimate> {
    estimate_points_adaptive_in(points, targets, config, None)
}

/// [`estimate_points_adaptive`] with an optional persistent decode-cache
/// directory: when `decode_cache_dir` is set, every point's experiment loads
/// matching per-sector decode-cache files before sampling and stores them back
/// after (see [`MemoryExperiment::set_decode_cache_dir`]), so sweep re-runs and
/// refinement passes skip the compulsory-miss wall. Cache files never affect
/// estimates — entries are exact decoder outputs keyed by the full decode
/// context — so results remain bit-identical with or without the directory.
///
/// # Panics
///
/// Panics if `targets` is not exactly one entry per point.
pub fn estimate_points_adaptive_in(
    points: &[LerPoint<'_>],
    targets: &[Option<PrecisionTarget>],
    config: &MemoryConfig,
    decode_cache_dir: Option<&Path>,
) -> Vec<LerEstimate> {
    assert_eq!(
        points.len(),
        targets.len(),
        "need exactly one precision target slot per point"
    );
    if points.is_empty() {
        return Vec::new();
    }
    let workers = config.worker_count().max(1).min(points.len());
    // Each point samples with a single worker thread; both the fixed and the
    // adaptive estimate are thread-count invariant, so this only affects
    // scheduling, never the values.
    let point_config = MemoryConfig {
        threads: 1,
        ..*config
    };
    let next_point = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<LerEstimate>>> =
        points.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Decoder pairs are cached per code (keyed by the reference's
                // address, stable for the duration of the scope).
                let mut experiments: Vec<(*const CssCode, MemoryExperiment<'_>)> = Vec::new();
                loop {
                    let i = next_point.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let point = &points[i];
                    let key = std::ptr::from_ref(point.code);
                    let model = HardwareNoiseModel::new(
                        noise::NoiseParameters::new(point.p),
                        point.latency,
                    );
                    let exp = match experiments.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, exp)) => {
                            exp.set_model(model);
                            exp
                        }
                        None => {
                            experiments.push((
                                key,
                                MemoryExperiment::new(
                                    point.code,
                                    model,
                                    point_config.bp_iterations,
                                ),
                            ));
                            &mut experiments.last_mut().expect("just pushed").1
                        }
                    };
                    exp.set_decode_cache_dir(decode_cache_dir.map(Path::to_path_buf));
                    // A structured channel replaces the uniform one set_model just
                    // installed; uniform specs skip the rebuild and keep the
                    // historical fast path byte-for-byte.
                    if let Some(spec) = point.channel {
                        if !spec.is_uniform() {
                            exp.set_channel(spec.instantiate(
                                &model,
                                point.code.num_qubits(),
                                point.code.num_stabilizers(),
                            ));
                        }
                    }
                    let estimate = match &targets[i] {
                        None => exp.run(&point_config),
                        Some(target) => exp.run_adaptive(&point_config, target),
                    };
                    *results[i].lock().expect("unpoisoned") = Some(estimate);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned")
                .expect("every point ran")
        })
        .collect()
}

// cyclone-lint: hot-path
/// XORs two equal-length slices into a reused output buffer.
fn xor_into(a: &[bool], b: &[bool], out: &mut Vec<bool>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| x ^ y));
}

/// Applies one depolarizing event to qubit `q`: X, Y, Z each with probability 1/3
/// (X-frame = X or Y; Z-frame = Z or Y).
#[inline]
fn depolarize<R: Rng>(rng: &mut R, scratch: &mut ShotScratch, q: usize) {
    match rng.gen_range(0..3) {
        0 => scratch.x_error[q] = true,
        1 => scratch.z_error[q] = true,
        _ => {
            scratch.x_error[q] = true;
            scratch.z_error[q] = true;
        }
    }
}

/// Bit-sliced [`depolarize`]: applies one depolarizing event to qubit `q` in the
/// lane selected by `lane`, drawing the same single `gen_range(0..3)` the scalar
/// path draws so the per-shot RNG streams stay aligned.
#[inline]
fn depolarize_words<R: Rng>(rng: &mut R, batch: &mut BatchScratch, q: usize, lane: u64) {
    match rng.gen_range(0..3) {
        0 => batch.x_err_words[q] |= lane,
        1 => batch.z_err_words[q] |= lane,
        _ => {
            batch.x_err_words[q] |= lane;
            batch.z_err_words[q] |= lane;
        }
    }
}

/// Flips each extracted syndrome bit with its check's measurement error rate.
/// An empty rate slice (noiseless measurement) draws nothing from the RNG, so the
/// uniform channel's stream stays bit-identical to the historical path.
#[inline]
fn flip_syndrome<R: Rng>(rng: &mut R, syndrome: &mut [bool], rates: &[f64]) {
    if rates.is_empty() {
        return;
    }
    debug_assert_eq!(
        syndrome.len(),
        rates.len(),
        "one measurement rate per check"
    );
    for (bit, &p) in syndrome.iter_mut().zip(rates) {
        if rng.gen_bool(p) {
            *bit = !*bit;
        }
    }
}
// cyclone-lint: end-hot-path

/// Convenience: estimate the LER of `code` for a round that takes `latency` seconds at
/// physical error rate `p`.
pub fn logical_error_rate(
    code: &CssCode,
    p: f64,
    latency: f64,
    config: &MemoryConfig,
) -> LerEstimate {
    let model = HardwareNoiseModel::new(noise::NoiseParameters::new(p), latency);
    MemoryExperiment::new(code, model, config.bp_iterations).run(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noise::NoiseParameters;
    use qec::codes::bb_72_12_6;

    #[test]
    fn low_noise_gives_low_ler() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 0.0);
        let exp = MemoryExperiment::new(&code, model, 25);
        let est = exp.run(&MemoryConfig {
            shots: 300,
            ..Default::default()
        });
        assert!(
            est.ler < 0.1,
            "LER {} too high at p=1e-4 with zero latency",
            est.ler
        );
    }

    #[test]
    fn latency_increases_ler() {
        let code = bb_72_12_6().expect("valid");
        let cfg = MemoryConfig {
            shots: 400,
            ..Default::default()
        };
        let fast = logical_error_rate(&code, 2e-3, 0.0, &cfg);
        let slow = logical_error_rate(&code, 2e-3, 0.3, &cfg);
        assert!(
            slow.ler >= fast.ler,
            "long latency ({}) should not beat zero latency ({})",
            slow.ler,
            fast.ler
        );
    }

    #[test]
    fn huge_noise_gives_high_ler() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(0.2), 0.0);
        let exp = MemoryExperiment::new(&code, model, 10);
        let est = exp.run(&MemoryConfig {
            shots: 100,
            ..Default::default()
        });
        assert!(est.ler > 0.2, "LER {} suspiciously low at p=0.2", est.ler);
    }

    #[test]
    fn thread_count_does_not_change_the_estimate() {
        // threads: 0 resolves to available parallelism; because every shot owns
        // its own seeded RNG stream, the estimate must match a single-threaded
        // run exactly.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(8e-3), 5e-3);
        let exp = MemoryExperiment::new(&code, model, 20);
        let base = MemoryConfig {
            shots: 250,
            bp_iterations: 20,
            threads: 0,
            seed: 0xC1C1_0DE5,
        };
        let auto = exp.run(&base);
        let single = exp.run(&MemoryConfig { threads: 1, ..base });
        let four = exp.run(&MemoryConfig { threads: 4, ..base });
        assert_eq!(auto.failures, single.failures);
        assert_eq!(auto.failures, four.failures);
        assert_eq!(auto.ler, single.ler);
        assert_eq!(auto.shots, single.shots);
    }

    #[test]
    fn estimate_counts_consistent() {
        let e = LerEstimate::from_counts(1000, 10);
        assert_eq!(e.ler, 0.01);
        assert!(!e.is_upper_bound());
        let zero = LerEstimate::from_counts(1000, 0);
        assert!(zero.is_upper_bound());
        assert!(zero.ler > 0.0);
    }

    #[test]
    fn zero_failure_estimate_carries_nonzero_std_err() {
        // Regression: std_err used to come from the raw (zero) failure fraction, so
        // zero-failure points plotted with zero uncertainty despite the ler floor.
        let zero = LerEstimate::from_counts(400, 0);
        assert!(
            zero.std_err > 0.0,
            "floored estimate must have nonzero std_err"
        );
        let expected = (zero.ler * (1.0 - zero.ler) / 400.0).sqrt();
        assert_eq!(zero.std_err, expected);
        // Nonzero-failure points are unchanged: ler equals the raw fraction.
        let some = LerEstimate::from_counts(1000, 10);
        assert_eq!(some.std_err, (0.01f64 * 0.99 / 1000.0).sqrt());
    }

    #[test]
    fn zero_shot_config_returns_the_empty_estimate() {
        // Regression: shots == 0 used to fabricate a phantom 1-shot zero-failure
        // estimate (ler floored to 0.5) via `from_counts(shots.max(1), ...)`.
        let code = bb_72_12_6().expect("valid");
        let est = logical_error_rate(&code, 5e-3, 0.0, &MemoryConfig::with_shots(0));
        assert!(est.is_empty());
        assert_eq!(est.shots, 0);
        assert_eq!(est.failures, 0);
        assert_eq!(est.ler, 0.0);
        assert_eq!(est.std_err, 0.0);
        assert!(
            !est.is_upper_bound(),
            "no shots is no measurement, not an upper bound"
        );
        assert!(est.ler.is_finite() && est.std_err.is_finite());
        assert_eq!(est.relative_std_err(), f64::INFINITY);
        assert_eq!(est, LerEstimate::empty());
    }

    #[test]
    fn precision_target_stop_rule() {
        let t = PrecisionTarget::new(0.48, 3, 10_000);
        // Below the failure floor: never met, whatever the rse would be.
        assert!(!t.met_by(10_000, 2));
        assert!(!t.met_by(0, 0));
        // rse = sqrt((1-p)/(p*s)): 4 failures in 40 shots → p=0.1, rse = 0.474 ≤ 0.48.
        assert!(t.met_by(40, 4));
        // Same failures over more shots → rse approaches 1/√failures = 0.49975 → not met.
        assert!(!t.met_by(4_000, 4));
        // The failure floor is at least 1, so a floored zero-failure estimate never
        // satisfies any target.
        let loose = PrecisionTarget::new(100.0, 0, 100);
        assert!(!loose.met_by(100, 0));
        assert!(loose.met_by(100, 1));
        // target_rse = 0 never stops early.
        assert!(!PrecisionTarget::new(0.0, 1, 100).met_by(100, 99));
    }

    #[test]
    fn adaptive_estimate_is_a_prefix_of_the_fixed_path() {
        // The adaptive run must return exactly what a fixed-budget run of its own
        // shot count returns: the stop rule chooses the budget, never the sample.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(0.05), 0.0);
        let exp = MemoryExperiment::new(&code, model, 15);
        let config = MemoryConfig {
            shots: 0, // ignored by the adaptive path
            bp_iterations: 15,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let target = PrecisionTarget::new(0.35, 8, 5_000);
        let adaptive = exp.run_adaptive(&config, &target);
        assert!(adaptive.shots < 5_000, "high-failure point must stop early");
        assert!(target.met_by(adaptive.shots, adaptive.failures));
        assert!(
            !target.met_by(
                adaptive.shots - 1,
                adaptive.failures - usize::from(adaptive.failures > 0)
            ),
            "must stop at the *smallest* qualifying prefix"
        );
        let fixed = exp.run(&MemoryConfig {
            shots: adaptive.shots,
            ..config
        });
        assert_eq!(
            adaptive, fixed,
            "adaptive result must be the fixed result of its shot count"
        );
    }

    #[test]
    fn adaptive_is_thread_and_batch_invariant() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(0.04), 0.0);
        let exp = MemoryExperiment::new(&code, model, 15);
        let base = MemoryConfig {
            shots: 0,
            bp_iterations: 15,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let target = PrecisionTarget::new(0.4, 6, 2_000);
        let reference = exp.run_adaptive_batched(&base, &target, 1);
        for (threads, batch) in [(1usize, 7usize), (1, 64), (4, 1), (4, 32), (4, 997)] {
            let got = exp.run_adaptive_batched(&MemoryConfig { threads, ..base }, &target, batch);
            assert_eq!(
                got, reference,
                "threads={threads} batch={batch} diverged from the single-shot reference"
            );
        }
        assert_eq!(
            exp.run_adaptive(&MemoryConfig { threads: 4, ..base }, &target),
            reference
        );
    }

    #[test]
    fn adaptive_caps_at_max_shots() {
        // An unreachable target (failure floor above what the cap can deliver)
        // must cap at max_shots and match the fixed run of that budget exactly.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 0.0);
        let exp = MemoryExperiment::new(&code, model, 15);
        let config = MemoryConfig {
            shots: 0,
            bp_iterations: 15,
            threads: 2,
            seed: 0xC1C1_0DE5,
        };
        let target = PrecisionTarget::new(0.1, 1_000_000, 300);
        let capped = exp.run_adaptive(&config, &target);
        assert_eq!(capped.shots, 300);
        assert_eq!(
            capped,
            exp.run(&MemoryConfig {
                shots: 300,
                ..config
            })
        );
        // A zero-shot cap is the empty estimate, like a zero-shot fixed config.
        let empty = exp.run_adaptive(&config, &PrecisionTarget::new(0.1, 1, 0));
        assert!(empty.is_empty());
    }

    #[test]
    fn estimate_points_adaptive_mixes_fixed_and_adaptive_points() {
        let code = bb_72_12_6().expect("valid");
        let config = MemoryConfig {
            shots: 150,
            bp_iterations: 15,
            threads: 4,
            seed: 0xC1C1_0DE5,
        };
        let points = [
            LerPoint {
                code: &code,
                p: 0.05,
                latency: 0.0,
                channel: None,
            },
            LerPoint {
                code: &code,
                p: 0.05,
                latency: 0.0,
                channel: None,
            },
        ];
        let target = PrecisionTarget::new(0.4, 6, 4_000);
        let targets = [None, Some(target)];
        let mixed = estimate_points_adaptive(&points, &targets, &config);
        // The fixed slot matches the plain fixed path ...
        assert_eq!(mixed[0], logical_error_rate(&code, 0.05, 0.0, &config));
        // ... and the adaptive slot matches a direct adaptive run.
        let model = HardwareNoiseModel::new(NoiseParameters::new(0.05), 0.0);
        let exp = MemoryExperiment::new(&code, model, config.bp_iterations);
        assert_eq!(
            mixed[1],
            exp.run_adaptive(
                &MemoryConfig {
                    threads: 1,
                    ..config
                },
                &target
            )
        );
    }

    #[test]
    fn scratch_sampling_matches_allocating_sampling() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(6e-3), 2e-3);
        let exp = MemoryExperiment::new(&code, model, 20);
        let mut scratch = ShotScratch::new();
        for shot in 0..40u64 {
            let mut rng_a = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot);
            let mut rng_b = StdRng::seed_from_u64(0xC1C1_0DE5 ^ shot);
            assert_eq!(
                exp.sample_one(&mut rng_a),
                exp.sample_one_with(&mut rng_b, &mut scratch),
                "shot {shot} diverged between allocating and scratch paths"
            );
        }
    }

    #[test]
    fn estimate_points_matches_serial_calls() {
        let code = bb_72_12_6().expect("valid");
        let cfg = MemoryConfig {
            shots: 120,
            bp_iterations: 20,
            threads: 4,
            seed: 0xC1C1_0DE5,
        };
        let points = [
            LerPoint {
                code: &code,
                p: 2e-3,
                latency: 0.0,
                channel: None,
            },
            LerPoint {
                code: &code,
                p: 2e-3,
                latency: 0.05,
                channel: None,
            },
            LerPoint {
                code: &code,
                p: 8e-3,
                latency: 0.01,
                channel: None,
            },
        ];
        let pooled = estimate_points(&points, &cfg);
        assert_eq!(pooled.len(), 3);
        for (point, est) in points.iter().zip(&pooled) {
            let direct = logical_error_rate(point.code, point.p, point.latency, &cfg);
            assert_eq!(est.failures, direct.failures, "point {point:?} diverged");
            assert_eq!(est.ler, direct.ler);
            assert_eq!(est.shots, direct.shots);
        }
    }

    #[test]
    fn estimate_points_is_pool_size_invariant() {
        let code = bb_72_12_6().expect("valid");
        let base = MemoryConfig {
            shots: 80,
            bp_iterations: 15,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let points: Vec<LerPoint<'_>> = [1e-3, 3e-3, 6e-3, 9e-3]
            .iter()
            .map(|&p| LerPoint {
                code: &code,
                p,
                latency: 0.02,
                channel: None,
            })
            .collect();
        let serial = estimate_points(&points, &base);
        let pooled = estimate_points(&points, &MemoryConfig { threads: 4, ..base });
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.ler, b.ler);
        }
    }

    #[test]
    fn estimate_points_handles_empty_input() {
        assert!(estimate_points(&[], &MemoryConfig::default()).is_empty());
    }

    #[test]
    fn explicit_uniform_channel_is_bit_identical_to_the_scalar_path() {
        // Installing the uniform channel by hand must reproduce the historical
        // scalar path exactly: same RNG stream, same cached-LLR decodes.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(8e-3), 5e-3);
        let cfg = MemoryConfig {
            shots: 200,
            bp_iterations: 20,
            threads: 2,
            seed: 0xC1C1_0DE5,
        };
        let scalar = MemoryExperiment::new(&code, model, cfg.bp_iterations).run(&cfg);
        let channel = noise::ErrorChannel::uniform(code.num_qubits(), model.effective_error_rate());
        let channeled =
            MemoryExperiment::with_channel(&code, model, channel, cfg.bp_iterations).run(&cfg);
        assert_eq!(scalar, channeled);
    }

    #[test]
    fn measurement_noise_degrades_the_logical_error_rate() {
        // A biased channel flips extracted syndrome bits, so decoding gets harder:
        // at matched data rates the biased LER must not beat the uniform one (and
        // with a strong bias it should clearly exceed it).
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(4e-3), 0.0);
        let cfg = MemoryConfig {
            shots: 400,
            bp_iterations: 20,
            threads: 2,
            seed: 0xC1C1_0DE5,
        };
        let p = model.effective_error_rate();
        let uniform = MemoryExperiment::new(&code, model, cfg.bp_iterations).run(&cfg);
        let biased = noise::ErrorChannel::biased(
            code.num_qubits(),
            code.num_stabilizers(),
            p,
            (20.0 * p).min(0.45),
        );
        let noisy =
            MemoryExperiment::with_channel(&code, model, biased, cfg.bp_iterations).run(&cfg);
        assert!(
            noisy.failures > uniform.failures,
            "strong measurement noise ({} failures) should beat uniform ({} failures)",
            noisy.failures,
            uniform.failures
        );
    }

    #[test]
    fn structured_channels_are_thread_count_invariant() {
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(6e-3), 1e-3);
        let p = model.effective_error_rate();
        // Heterogeneous data rates and measurement noise in one channel.
        let mut data: Vec<f64> = vec![p; code.num_qubits()];
        for (q, rate) in data.iter_mut().enumerate() {
            if q % 3 == 0 {
                *rate = (2.0 * p).min(0.5);
            }
        }
        let channel = noise::ErrorChannel::from_rates(data, vec![2e-3; code.num_stabilizers()]);
        let base = MemoryConfig {
            shots: 150,
            bp_iterations: 15,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let exp = MemoryExperiment::with_channel(&code, model, channel, base.bp_iterations);
        let single = exp.run(&base);
        let four = exp.run(&MemoryConfig { threads: 4, ..base });
        assert_eq!(single, four);
    }

    #[test]
    fn decode_warmup_preserves_bit_identity() {
        // The structured-channel warm-up prefix (DECODE_WARMUP_SHOTS sampled once
        // before the pool fans out) must never change the estimate: it only
        // pre-seeds caches, and the workers re-sample the prefix from the same
        // per-shot streams. shots > DECODE_WARMUP_SHOTS so the warm-up actually
        // engages on the multi-worker and cache-dir paths.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(5e-3), 0.0);
        let base = MemoryConfig {
            shots: DECODE_WARMUP_SHOTS + 120,
            bp_iterations: 15,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let channel =
            noise::ErrorChannel::biased(code.num_qubits(), code.num_stabilizers(), 5e-3, 0.5);
        let mut exp = MemoryExperiment::with_channel(&code, model, channel, base.bp_iterations);
        // threads 1 without a cache dir skips the warm-up entirely: the
        // unwarmed reference.
        let reference = exp.run(&base);
        // Multi-worker path: warm-up runs, workers clone the warm scratch.
        assert_eq!(exp.run(&MemoryConfig { threads: 4, ..base }), reference);
        // Cache-dir path: warm-up runs and persists, cold and warm alike.
        let dir =
            std::env::temp_dir().join(format!("cyclone-warmup-identity-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exp.set_decode_cache_dir(Some(dir.clone()));
        assert_eq!(exp.run(&base), reference, "cold persistent caches");
        assert_eq!(exp.run(&base), reference, "warm persistent caches");
        assert_eq!(
            exp.run(&MemoryConfig { threads: 4, ..base }),
            reference,
            "warm caches across a worker pool"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_model_resets_a_structured_channel() {
        // A custom channel must never leak into the next operating point: set_model
        // reinstalls the uniform channel of the new model.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(5e-3), 0.0);
        let cfg = MemoryConfig {
            shots: 150,
            ..Default::default()
        };
        let fresh = MemoryExperiment::new(&code, model, cfg.bp_iterations).run(&cfg);
        let biased =
            noise::ErrorChannel::biased(code.num_qubits(), code.num_stabilizers(), 5e-3, 0.3);
        let mut exp = MemoryExperiment::with_channel(&code, model, biased, cfg.bp_iterations);
        assert!(exp.channel().has_measurement_noise());
        exp.set_model(model);
        assert_eq!(
            exp.channel().uniform_rate(),
            Some(model.effective_error_rate())
        );
        assert_eq!(exp.run(&cfg), fresh);
    }

    #[test]
    fn estimate_points_applies_channel_specs_per_point() {
        let code = bb_72_12_6().expect("valid");
        let cfg = MemoryConfig {
            shots: 150,
            bp_iterations: 15,
            threads: 4,
            seed: 0xC1C1_0DE5,
        };
        let biased = ChannelSpec::Biased { meas_ratio: 20.0 };
        let points = [
            LerPoint {
                code: &code,
                p: 5e-3,
                latency: 0.0,
                channel: None,
            },
            LerPoint {
                code: &code,
                p: 5e-3,
                latency: 0.0,
                channel: Some(&ChannelSpec::Uniform),
            },
            LerPoint {
                code: &code,
                p: 5e-3,
                latency: 0.0,
                channel: Some(&biased),
            },
        ];
        let estimates = estimate_points(&points, &cfg);
        // None and an explicit Uniform spec are the same path ...
        assert_eq!(estimates[0], estimates[1]);
        assert_eq!(estimates[0], logical_error_rate(&code, 5e-3, 0.0, &cfg));
        // ... and the biased point sees more failures under the same seeds.
        assert!(estimates[2].failures > estimates[0].failures);
    }

    #[test]
    fn schedule_channel_samples_end_to_end() {
        // A from_schedule channel (heterogeneous data + ancilla rates) drives the
        // sampler and per-bit priors without panicking, deterministically.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(5e-3), 2e-2);
        let n = code.num_qubits();
        let data_idle: Vec<f64> = (0..n).map(|q| 2e-2 * (q % 5) as f64 / 4.0).collect();
        let meas_idle: Vec<f64> = (0..code.num_stabilizers())
            .map(|c| 1e-2 * (c % 3) as f64)
            .collect();
        let channel = noise::ErrorChannel::from_schedule(&model, &data_idle, &meas_idle);
        assert!(channel.uniform_rate().is_none());
        let cfg = MemoryConfig {
            shots: 120,
            bp_iterations: 15,
            threads: 2,
            seed: 0xC1C1_0DE5,
        };
        let exp = MemoryExperiment::with_channel(&code, model, channel.clone(), cfg.bp_iterations);
        let a = exp.run(&cfg);
        let b = MemoryExperiment::with_channel(&code, model, channel, cfg.bp_iterations).run(&cfg);
        assert_eq!(a, b, "schedule-channel sampling must be deterministic");
        assert_eq!(a.shots, cfg.shots);
    }

    #[test]
    fn rates_straddling_the_old_clamp_sample_identically_to_the_saturated_rate() {
        // Regression for the silent mid-sample `p.min(0.75)`: rates are now
        // saturated once at channel construction (with `saturated()` recording
        // it), so a channel requesting 0.9 must sample exactly like one built at
        // the depolarizing maximum — same streams, same failures — while a rate
        // below the clamp is untouched.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(0.3), 0.0);
        let n = code.num_qubits();
        let cfg = MemoryConfig {
            shots: 64,
            bp_iterations: 10,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let over = noise::ErrorChannel::from_rates(vec![0.9; n], Vec::new());
        assert!(over.saturated());
        let at_max = noise::ErrorChannel::from_rates(vec![0.75; n], Vec::new());
        assert!(!at_max.saturated());
        let a = MemoryExperiment::with_channel(&code, model, over, cfg.bp_iterations).run(&cfg);
        let b = MemoryExperiment::with_channel(&code, model, at_max, cfg.bp_iterations).run(&cfg);
        assert_eq!(a, b, "saturated channel must sample at the maximum");
        // Below the old clamp nothing changes: 0.7 stays 0.7 and differs from
        // the saturated stream.
        let below = noise::ErrorChannel::from_rates(vec![0.7; n], Vec::new());
        assert!(!below.saturated());
        let c = MemoryExperiment::with_channel(&code, model, below, cfg.bp_iterations).run(&cfg);
        assert_ne!(a.failures, 0);
        assert!(
            c.failures <= a.failures,
            "lower rate cannot fail more often"
        );
    }

    #[test]
    fn batch_decode_cache_hits_on_repeated_syndromes() {
        // At physical rates the syndrome distribution is dominated by a few
        // popular patterns; the batch path must serve most decodes from the
        // per-sector caches, and cached runs must match cold runs exactly.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(3e-3), 0.0);
        let exp = MemoryExperiment::with_channel(
            &code,
            model,
            noise::ErrorChannel::biased(code.num_qubits(), code.num_stabilizers(), 3e-3, 6e-3),
            20,
        );
        let cfg = MemoryConfig {
            shots: 0,
            bp_iterations: 20,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let mut batch = BatchScratch::new();
        let mut masks = Vec::new();
        for chunk in 0..60 {
            masks.push(exp.sample_batch_with(&cfg, chunk * 64, 64, &mut batch));
        }
        let (hits, misses) = batch.cache_stats();
        assert!(hits > 0, "repeated syndromes must hit the decode cache");
        assert!(
            hits > misses,
            "physical-rate syndromes should mostly repeat (hits {hits}, misses {misses})"
        );
        // Replaying through a warm cache reproduces every mask bit-for-bit.
        for (chunk, &mask) in masks.iter().enumerate() {
            assert_eq!(
                exp.sample_batch_with(&cfg, chunk * 64, 64, &mut batch),
                mask
            );
        }
    }

    #[test]
    fn weight1_fast_path_serves_measurement_flip_lanes() {
        // Under measurement noise, single-flip syndromes dominate the active
        // lanes; they must resolve through the weight-1 table, not BP/OSD, and
        // stats must account for every active lane exactly once.
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(3e-3), 0.0);
        let exp = MemoryExperiment::with_channel(
            &code,
            model,
            noise::ErrorChannel::biased(code.num_qubits(), code.num_stabilizers(), 3e-3, 6e-3),
            20,
        );
        let cfg = MemoryConfig {
            shots: 0,
            bp_iterations: 20,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };
        let mut batch = BatchScratch::new();
        for chunk in 0..40 {
            exp.sample_batch_with(&cfg, chunk * 64, 64, &mut batch);
        }
        let stats = batch.stats();
        assert!(
            stats.weight1_hits > 0,
            "measurement flips must exercise the weight-1 fast path"
        );
        let (hits, _) = batch.cache_stats();
        assert_eq!(
            stats.active_lanes,
            stats.weight1_hits + hits + stats.decoded,
            "every active lane resolves exactly once: {stats:?} cache hits {hits}"
        );
        assert!(stats.osd_fallbacks <= stats.decoded);
    }

    #[test]
    fn persisted_decode_caches_roundtrip_and_stay_bit_identical() {
        let dir = std::env::temp_dir().join(format!("memory-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let code = bb_72_12_6().expect("valid");
        let model = HardwareNoiseModel::new(NoiseParameters::new(3e-3), 0.0);
        let channel =
            noise::ErrorChannel::biased(code.num_qubits(), code.num_stabilizers(), 3e-3, 6e-3);
        let cfg = MemoryConfig {
            shots: 400,
            bp_iterations: 20,
            threads: 1,
            seed: 0xC1C1_0DE5,
        };

        let mut exp = MemoryExperiment::with_channel(&code, model, channel.clone(), 20);
        let cold = exp.run(&cfg);

        exp.set_decode_cache_dir(Some(dir.clone()));
        let writing = exp.run(&cfg);
        assert_eq!(
            cold.failures, writing.failures,
            "cache dir must not change results"
        );
        let files: Vec<_> = std::fs::read_dir(&dir)
            .expect("cache dir created")
            .filter_map(|e| e.ok())
            .collect();
        assert!(!files.is_empty(), "run must persist sector cache files");

        // A fresh experiment over the same context loads the persisted entries
        // and reproduces the estimate bit-for-bit.
        let mut warm_exp = MemoryExperiment::with_channel(&code, model, channel.clone(), 20);
        let mut scratch = BatchScratch::new();
        let loaded = warm_exp.load_decode_caches(&dir, &mut scratch);
        assert!(
            loaded > 0,
            "persisted entries must load for the same context"
        );
        warm_exp.set_decode_cache_dir(Some(dir.clone()));
        let warm = warm_exp.run(&cfg);
        assert_eq!(cold.failures, warm.failures);
        assert_eq!(cold.ler, warm.ler);

        // Decoding depends on the data-rate priors, not the measurement rates:
        // a channel differing only in measurement ratio shares the decode
        // context and legitimately reuses the persisted entries...
        let shared = MemoryExperiment::with_channel(
            &code,
            model,
            noise::ErrorChannel::biased(code.num_qubits(), code.num_stabilizers(), 3e-3, 9e-3),
            20,
        );
        let mut shared_scratch = BatchScratch::new();
        assert!(shared.load_decode_caches(&dir, &mut shared_scratch) > 0);
        // ...while different data rates bind a different context: nothing
        // loads, nothing breaks.
        let other = MemoryExperiment::with_channel(
            &code,
            model,
            noise::ErrorChannel::biased(code.num_qubits(), code.num_stabilizers(), 4e-3, 6e-3),
            20,
        );
        let mut other_scratch = BatchScratch::new();
        assert_eq!(other.load_decode_caches(&dir, &mut other_scratch), 0);

        // Adaptive runs accept the directory too and stay bit-identical.
        let target = PrecisionTarget::new(0.3, 1, 400);
        let plain = MemoryExperiment::with_channel(&code, model, channel.clone(), 20)
            .run_adaptive(&cfg, &target);
        let mut adaptive_exp = MemoryExperiment::with_channel(&code, model, channel, 20);
        adaptive_exp.set_decode_cache_dir(Some(dir.clone()));
        let adaptive = adaptive_exp.run_adaptive(&cfg, &target);
        assert_eq!(plain.failures, adaptive.failures);
        assert_eq!(plain.shots, adaptive.shots);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn estimate_points_adaptive_in_matches_without_cache_dir() {
        let dir = std::env::temp_dir().join(format!("points-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let code = bb_72_12_6().expect("valid");
        let spec = ChannelSpec::Biased { meas_ratio: 2.0 };
        let points = [
            LerPoint {
                code: &code,
                p: 4e-3,
                latency: 0.0,
                channel: Some(&spec),
            },
            LerPoint {
                code: &code,
                p: 4e-3,
                latency: 0.0,
                channel: None,
            },
        ];
        let targets = [None, None];
        let cfg = MemoryConfig {
            shots: 200,
            bp_iterations: 20,
            threads: 2,
            seed: 0xC1C1_0DE5,
        };
        let plain = estimate_points_adaptive(&points, &targets, &cfg);
        let writing = estimate_points_adaptive_in(&points, &targets, &cfg, Some(dir.as_path()));
        let warm = estimate_points_adaptive_in(&points, &targets, &cfg, Some(dir.as_path()));
        for (a, b) in plain.iter().zip(&writing) {
            assert_eq!(a.failures, b.failures);
        }
        for (a, b) in plain.iter().zip(&warm) {
            assert_eq!(a.failures, b.failures);
        }
        assert!(
            std::fs::read_dir(&dir)
                .map(|d| d.count() > 0)
                .unwrap_or(false),
            "point pool must persist decode caches"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn set_model_matches_fresh_experiment() {
        let code = bb_72_12_6().expect("valid");
        let cfg = MemoryConfig {
            shots: 120,
            ..Default::default()
        };
        let fresh = logical_error_rate(&code, 5e-3, 0.1, &cfg);
        let mut exp = MemoryExperiment::new(
            &code,
            HardwareNoiseModel::new(NoiseParameters::new(5e-3), 0.0),
            cfg.bp_iterations,
        );
        exp.set_model(HardwareNoiseModel::new(NoiseParameters::new(5e-3), 0.1));
        let reused = exp.run(&cfg);
        assert_eq!(fresh.failures, reused.failures);
        assert_eq!(fresh.ler, reused.ler);
    }
}
