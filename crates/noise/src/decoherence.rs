//! Decoherence modelling via the Pauli twirling approximation.
//!
//! An idling qubit subject to amplitude damping (decay time `T1`, written `Tₐ` in the
//! paper) and dephasing (time `T2`, written `T_b`) for a duration `t` can be
//! approximated — after Pauli twirling (Geller & Zhou; Tomita & Svore) — by a Pauli
//! channel with probabilities
//!
//! ```text
//! p_x = p_y = (1 - e^{-t/T1}) / 4
//! p_z = (1 - e^{-t/T2}) / 2 - (1 - e^{-t/T1}) / 4
//! ```
//!
//! The total error probability `p_x + p_y + p_z` is what the memory experiments add on
//! top of the base circuit-level error rate.

use serde::{Deserialize, Serialize};

/// Decay (`T1`) and dephasing (`T2`) times, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoherenceTimes {
    /// Amplitude-damping (decay) time `T1`, seconds.
    pub t1: f64,
    /// Dephasing time `T2`, seconds.
    pub t2: f64,
}

impl CoherenceTimes {
    /// Creates coherence times from explicit `T1` and `T2` values (seconds).
    ///
    /// # Panics
    ///
    /// Panics if either time is not strictly positive.
    pub fn new(t1: f64, t2: f64) -> Self {
        assert!(t1 > 0.0 && t2 > 0.0, "coherence times must be positive");
        CoherenceTimes { t1, t2 }
    }

    /// Symmetric coherence times `T1 = T2 = t`, the paper's default assumption
    /// (it uses the same parameterized value for both `Tₐ` and `T_b`).
    pub fn symmetric(t: f64) -> Self {
        Self::new(t, t)
    }
}

/// The paper's log-fit from physical error rate to coherence time:
/// `p = 10⁻⁴ ↦ 100 s` and `p = 10⁻³ ↦ 10 s`, log-linear in between and extrapolated
/// outside the range (clamped to stay positive).
///
/// # Panics
///
/// Panics if `p` is not strictly positive.
///
/// # Examples
///
/// ```
/// use noise::decoherence::coherence_time_from_p;
///
/// assert!((coherence_time_from_p(1e-4) - 100.0).abs() < 1e-9);
/// assert!((coherence_time_from_p(1e-3) - 10.0).abs() < 1e-9);
/// ```
pub fn coherence_time_from_p(p: f64) -> f64 {
    assert!(p > 0.0, "physical error rate must be positive");
    // log10(T) = a + b * log10(p); fit through (1e-4, 100) and (1e-3, 10):
    // b = (1 - 2) / (-3 - (-4)) = -1, a = 2 + (-1)*4 = -2  =>  T = 10^(-2) / p ... check:
    // log10(T) = -2 - log10(p); at p=1e-4: -2 + 4 = 2 -> 100. at p=1e-3: -2+3=1 -> 10. ok.
    let log_t = -2.0 - p.log10();
    10f64.powf(log_t).max(1e-3)
}

/// Pauli-twirled error probabilities `(p_x, p_y, p_z)` for a qubit idling for
/// `duration` seconds under the given coherence times.
///
/// # Panics
///
/// Panics if `duration` is negative.
pub fn pauli_twirl_probabilities(duration: f64, times: CoherenceTimes) -> (f64, f64, f64) {
    assert!(duration >= 0.0, "duration must be non-negative");
    let px = (1.0 - (-duration / times.t1).exp()) / 4.0;
    let py = px;
    let pz = ((1.0 - (-duration / times.t2).exp()) / 2.0 - px).max(0.0);
    (px, py, pz)
}

/// Total Pauli-twirled error probability (`p_x + p_y + p_z`) for an idle period.
///
/// This is the per-qubit decoherence error added by a syndrome-extraction round of the
/// given latency; the paper calls it `p_twirling`.
pub fn pauli_twirl_error(duration: f64, times: CoherenceTimes) -> f64 {
    let (px, py, pz) = pauli_twirl_probabilities(duration, times);
    (px + py + pz).min(0.75)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherence_fit_endpoints() {
        assert!((coherence_time_from_p(1e-4) - 100.0).abs() < 1e-9);
        assert!((coherence_time_from_p(1e-3) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn coherence_fit_monotone_decreasing() {
        let ps = [1e-4, 2e-4, 5e-4, 1e-3];
        for w in ps.windows(2) {
            assert!(coherence_time_from_p(w[0]) > coherence_time_from_p(w[1]));
        }
    }

    #[test]
    fn twirl_error_zero_duration() {
        let t = CoherenceTimes::symmetric(50.0);
        assert_eq!(pauli_twirl_error(0.0, t), 0.0);
    }

    #[test]
    fn twirl_error_increases_with_duration() {
        let t = CoherenceTimes::symmetric(50.0);
        let short = pauli_twirl_error(1e-3, t);
        let long = pauli_twirl_error(1e-2, t);
        assert!(long > short);
        assert!(short > 0.0);
    }

    #[test]
    fn twirl_error_saturates_below_three_quarters() {
        let t = CoherenceTimes::symmetric(1.0);
        assert!(pauli_twirl_error(1e6, t) <= 0.75);
    }

    #[test]
    fn twirl_small_time_linear_approximation() {
        // For t << T1=T2=T, total error ≈ 3/(4T) * t + 1/(4T) * t ... compute exactly:
        // px+py = (1-e^{-t/T})/2 ≈ t/(2T); pz = (1-e^{-t/T})/2 - (1-e^{-t/T})/4 ≈ t/(4T)
        // total ≈ 3t/(4T).
        let t = CoherenceTimes::symmetric(100.0);
        let dur = 1e-4;
        let approx = 3.0 * dur / (4.0 * 100.0);
        let exact = pauli_twirl_error(dur, t);
        assert!((exact - approx).abs() / approx < 1e-3);
    }

    #[test]
    fn asymmetric_t2_dominated_dephasing() {
        // Short T2 with long T1 should yield mostly Z error.
        let times = CoherenceTimes::new(1000.0, 1.0);
        let (px, _py, pz) = pauli_twirl_probabilities(0.1, times);
        assert!(pz > 10.0 * px);
    }
}
