//! Per-qubit error channels.
//!
//! The memory experiments historically collapsed the whole noise model into one
//! scalar: [`HardwareNoiseModel::effective_error_rate`] drove an i.i.d. uniform
//! depolarizing channel, and measurement noise and per-qubit structure were
//! discarded. An [`ErrorChannel`] lifts that scalar into a first-class, per-qubit
//! description of one syndrome-extraction round:
//!
//! * a **data** flip probability per data qubit (the depolarizing rate the
//!   Monte-Carlo sampler draws from, and the per-bit prior handed to the decoder),
//! * an optional **measurement** flip probability per stabilizer check (applied to
//!   the extracted syndrome bits before decoding).
//!
//! Three constructions cover the workloads of interest:
//!
//! * [`ErrorChannel::uniform`] — every data qubit at one rate, noiseless
//!   measurement: exactly the historical model (and recognized by the decoder's
//!   cached-LLR fast path, so it stays bit-identical to it);
//! * [`ErrorChannel::biased`] — uniform data rate plus a uniform measurement flip
//!   rate, for data-vs-measurement bias sweeps;
//! * [`ErrorChannel::from_schedule`] — heterogeneous per-qubit rates derived from
//!   the per-qubit *idle exposure* of a compiled schedule (`qccd::compiler::sim`
//!   exports it): qubits that idle longer while other traps shuttle and gate
//!   accumulate more decoherence, ancillas that sit parked accumulate more
//!   measurement error.
//!
//! [`ChannelSpec`] is the *serializable recipe* for a channel — the form that sweep
//! specifications carry and that participates in sweep-cache point identity via
//! [`ChannelSpec::cache_id`].
//!
//! # Measurement-check layout
//!
//! The `measurement` vector is indexed check-major: the `mx` X-stabilizer checks
//! first (rows of `Hx`, whose syndrome detects Z errors), then the `mz`
//! Z-stabilizer checks (rows of `Hz`, detecting X errors). This matches the
//! ancilla ion layout of the QCCD simulator, so a schedule's ancilla idle
//! exposures map one-to-one onto measurement flip probabilities.

use crate::model::HardwareNoiseModel;
use serde::{Deserialize, Serialize};

/// The maximum physically meaningful depolarizing probability: at 3/4 the channel
/// is fully depolarizing, so rates above it have no extra physical content.
/// [`ErrorChannel::from_rates`] saturates data rates here (recording the fact via
/// [`ErrorChannel::saturated`]) instead of letting the sampler clamp them silently.
pub const DEPOLARIZING_MAX: f64 = 0.75;

/// A per-qubit error channel for one syndrome-extraction round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorChannel {
    /// Per-data-qubit depolarizing probability.
    data: Vec<f64>,
    /// Per-check measurement flip probability (X-sector checks, then Z-sector —
    /// see the module docs). Empty means noiseless measurement.
    measurement: Vec<f64>,
    /// `Some(p)` iff every data rate is exactly `p` and measurement is noiseless —
    /// the decoder's cached-LLR fast path key, precomputed at construction.
    uniform: Option<f64>,
    /// Whether any requested rate exceeded [`DEPOLARIZING_MAX`] and was saturated
    /// at construction.
    saturated: bool,
}

impl ErrorChannel {
    /// Builds a channel from explicit per-qubit rates (the general constructor the
    /// named ones reduce to).
    ///
    /// Rates above [`DEPOLARIZING_MAX`] (3/4, the fully depolarizing point) are
    /// saturated to it here, once, with the saturation recorded in
    /// [`ErrorChannel::saturated`]. The sampler used to apply the same clamp
    /// silently on every draw (`p.min(0.75)` mid-shot), which distorted high-rate
    /// estimates without any signal; now the stored rates *are* the sampled rates.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, any data rate is outside `(0, 1)`, or any
    /// measurement rate is outside `[0, 1)` or non-finite.
    pub fn from_rates(data: Vec<f64>, measurement: Vec<f64>) -> Self {
        assert!(!data.is_empty(), "channel needs at least one data qubit");
        for &p in &data {
            assert!(
                p > 0.0 && p < 1.0 && p.is_finite(),
                "data rate {p} not in (0, 1)"
            );
        }
        for &p in &measurement {
            assert!(
                (0.0..1.0).contains(&p) && p.is_finite(),
                "measurement rate {p} not in [0, 1)"
            );
        }
        let saturated = data
            .iter()
            .chain(&measurement)
            .any(|&p| p > DEPOLARIZING_MAX);
        let data: Vec<f64> = data.into_iter().map(|p| p.min(DEPOLARIZING_MAX)).collect();
        let measurement: Vec<f64> = measurement
            .into_iter()
            .map(|p| p.min(DEPOLARIZING_MAX))
            .collect();
        let noiseless_measurement = measurement.iter().all(|&p| p == 0.0);
        let uniform = if noiseless_measurement && data.iter().all(|&p| p == data[0]) {
            Some(data[0])
        } else {
            None
        };
        // A channel whose measurement rates are all exactly zero is behaviorally
        // identical to one with no measurement vector; normalize so the sampler's
        // `has_measurement_noise` check stays a trivial `is_empty`.
        let measurement = if noiseless_measurement {
            Vec::new()
        } else {
            measurement
        };
        ErrorChannel {
            data,
            measurement,
            uniform,
            saturated,
        }
    }

    /// The historical model: `n` data qubits at the single rate `p`, noiseless
    /// measurement. Recognized by the decoder's cached-LLR fast path, so sampling
    /// and decoding stay bit-identical to the pre-channel scalar path.
    pub fn uniform(n: usize, p: f64) -> Self {
        Self::from_rates(vec![p; n], Vec::new())
    }

    /// A biased data-vs-measurement channel: `n` data qubits at `p_data`, `checks`
    /// measurement flips at `p_meas`. `p_meas == 0` degenerates to
    /// [`ErrorChannel::uniform`] (including its fast path).
    pub fn biased(n: usize, checks: usize, p_data: f64, p_meas: f64) -> Self {
        Self::from_rates(vec![p_data; n], vec![p_meas; checks])
    }

    /// A schedule-shaped channel: per-qubit rates derived from the per-qubit idle
    /// exposure of a compiled round.
    ///
    /// Each data qubit's rate is the model's base circuit-level data error plus the
    /// Pauli-twirled decoherence accumulated over *that qubit's* idle exposure
    /// (instead of the whole-round latency every qubit is charged under the uniform
    /// model); each check's measurement flip rate is the base measurement error
    /// plus the decoherence over the measuring ancilla's idle exposure. Rates that
    /// exceed [`DEPOLARIZING_MAX`] saturate there via [`ErrorChannel::from_rates`],
    /// with the saturation recorded in [`ErrorChannel::saturated`].
    ///
    /// `meas_idle` is check-major (X-sector ancillas then Z-sector, the simulator's
    /// ion layout); pass an empty slice for noiseless measurement.
    pub fn from_schedule(model: &HardwareNoiseModel, data_idle: &[f64], meas_idle: &[f64]) -> Self {
        let coherence = model.coherence();
        let base_data = model.parameters().base_data_error();
        let base_meas = model.parameters().base_measurement_error();
        let data = data_idle
            .iter()
            .map(|&idle| base_data + crate::decoherence::pauli_twirl_error(idle, coherence))
            .collect();
        let measurement = meas_idle
            .iter()
            .map(|&idle| base_meas + crate::decoherence::pauli_twirl_error(idle, coherence))
            .collect();
        Self::from_rates(data, measurement)
    }

    /// Number of data qubits.
    pub fn num_data(&self) -> usize {
        self.data.len()
    }

    /// Per-data-qubit depolarizing probabilities.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Per-check measurement flip probabilities (empty = noiseless measurement).
    pub fn measurement(&self) -> &[f64] {
        &self.measurement
    }

    /// Whether any check has a nonzero measurement flip probability.
    pub fn has_measurement_noise(&self) -> bool {
        !self.measurement.is_empty()
    }

    /// `Some(p)` when the channel is the uniform channel at rate `p` (identical
    /// data rates, noiseless measurement) — the decoder's fast-path key.
    pub fn uniform_rate(&self) -> Option<f64> {
        self.uniform
    }

    /// Whether any requested rate exceeded [`DEPOLARIZING_MAX`] and was saturated
    /// at construction — the recorded replacement for the sampler's old silent
    /// per-draw clamp.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// A 64-bit FNV-1a digest over the exact bit patterns of every rate — the
    /// content fingerprint [`ChannelSpec::cache_id`] uses for explicit channels.
    /// Floats survive the sweep cache's JSON round trip bit-exactly (shortest
    /// round-trip formatting), so equal channels digest equal across runs.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.data.len() as u64);
        for &p in &self.data {
            eat(p.to_bits());
        }
        eat(self.measurement.len() as u64);
        for &p in &self.measurement {
            eat(p.to_bits());
        }
        hash
    }
}

/// The serializable recipe for an [`ErrorChannel`]: how an operating point's
/// hardware noise model is turned into per-qubit rates. This is what sweep
/// specifications carry and what participates in sweep-cache point identity.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum ChannelSpec {
    /// The historical scalar model: every data qubit at the model's effective
    /// error rate, noiseless measurement. Bit-identical to the pre-channel path.
    #[default]
    Uniform,
    /// Uniform data rate plus measurement flips at `meas_ratio` times the data
    /// rate (clamped to 0.75). `meas_ratio == 0` is behaviorally uniform but keeps
    /// its own cache identity.
    Biased {
        /// Measurement flip rate as a multiple of the effective data rate.
        meas_ratio: f64,
    },
    /// A fully materialized channel (e.g. schedule-derived rates); the operating
    /// point's model is ignored by [`ChannelSpec::instantiate`].
    Explicit(ErrorChannel),
}

impl ChannelSpec {
    /// Whether this is the uniform (historical) spec.
    pub fn is_uniform(&self) -> bool {
        matches!(self, ChannelSpec::Uniform)
    }

    /// Materializes the channel for one operating point: `model` supplies the
    /// effective rates, `n` the data-qubit count and `checks` the total stabilizer
    /// check count (X-sector plus Z-sector).
    ///
    /// # Panics
    ///
    /// Panics if an explicit channel's dimensions do not match `n` / `checks`.
    pub fn instantiate(&self, model: &HardwareNoiseModel, n: usize, checks: usize) -> ErrorChannel {
        match self {
            ChannelSpec::Uniform => ErrorChannel::uniform(n, model.effective_error_rate()),
            ChannelSpec::Biased { meas_ratio } => {
                let p = model.effective_error_rate();
                ErrorChannel::biased(n, checks, p, (meas_ratio * p).clamp(0.0, 0.75))
            }
            ChannelSpec::Explicit(channel) => {
                assert_eq!(
                    channel.num_data(),
                    n,
                    "explicit channel sized for a different code"
                );
                assert!(
                    !channel.has_measurement_noise() || channel.measurement().len() == checks,
                    "explicit channel has {} measurement checks, code has {checks}",
                    channel.measurement().len()
                );
                channel.clone()
            }
        }
    }

    /// The compact identity string written into sweep-cache entries (schema 3) and
    /// compared on reads: `"uniform"`, `"biased:<ratio>"`, or
    /// `"explicit:<digest>"`. Two points with different ids never share a cache
    /// entry; schema-1/2 entries (no channel field) read back as `"uniform"`.
    pub fn cache_id(&self) -> String {
        match self {
            ChannelSpec::Uniform => "uniform".to_string(),
            ChannelSpec::Biased { meas_ratio } => format!("biased:{meas_ratio}"),
            ChannelSpec::Explicit(channel) => format!("explicit:{:016x}", channel.digest()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NoiseParameters;

    fn model(p: f64, latency: f64) -> HardwareNoiseModel {
        HardwareNoiseModel::new(NoiseParameters::new(p), latency)
    }

    #[test]
    fn uniform_channel_exposes_its_rate() {
        let ch = ErrorChannel::uniform(10, 3e-3);
        assert_eq!(ch.uniform_rate(), Some(3e-3));
        assert_eq!(ch.num_data(), 10);
        assert!(!ch.has_measurement_noise());
        assert!(ch.data().iter().all(|&p| p == 3e-3));
    }

    #[test]
    fn biased_channel_has_measurement_noise() {
        let ch = ErrorChannel::biased(10, 6, 3e-3, 6e-3);
        assert_eq!(ch.uniform_rate(), None);
        assert!(ch.has_measurement_noise());
        assert_eq!(ch.measurement().len(), 6);
        assert!(ch.measurement().iter().all(|&p| p == 6e-3));
    }

    #[test]
    fn zero_bias_degenerates_to_uniform() {
        // All-zero measurement rates normalize away, so the fast path applies.
        let ch = ErrorChannel::biased(10, 6, 3e-3, 0.0);
        assert_eq!(ch.uniform_rate(), Some(3e-3));
        assert!(!ch.has_measurement_noise());
        assert_eq!(ch, ErrorChannel::uniform(10, 3e-3));
    }

    #[test]
    fn heterogeneous_data_rates_disable_the_fast_path() {
        let ch = ErrorChannel::from_rates(vec![1e-3, 2e-3], Vec::new());
        assert_eq!(ch.uniform_rate(), None);
        assert!(!ch.has_measurement_noise());
    }

    #[test]
    #[should_panic(expected = "data rate")]
    fn out_of_range_data_rate_rejected() {
        let _ = ErrorChannel::from_rates(vec![0.0], Vec::new());
    }

    #[test]
    #[should_panic(expected = "measurement rate")]
    fn out_of_range_measurement_rate_rejected() {
        let _ = ErrorChannel::from_rates(vec![1e-3], vec![1.0]);
    }

    #[test]
    fn rates_above_depolarizing_max_saturate_with_a_recorded_flag() {
        // Straddle the old silent clamp: 0.7 passes through untouched, 0.9
        // saturates at 0.75, and the saturation is visible on the channel.
        let ch = ErrorChannel::from_rates(vec![0.7, 0.9], vec![0.2, 0.8]);
        assert_eq!(ch.data(), &[0.7, DEPOLARIZING_MAX]);
        assert_eq!(ch.measurement(), &[0.2, DEPOLARIZING_MAX]);
        assert!(ch.saturated());

        // Rates at or below the maximum are untouched and unflagged.
        let ch = ErrorChannel::from_rates(vec![0.7, DEPOLARIZING_MAX], vec![0.2]);
        assert_eq!(ch.data(), &[0.7, DEPOLARIZING_MAX]);
        assert!(!ch.saturated());
        assert!(!ErrorChannel::uniform(4, 3e-3).saturated());
    }

    #[test]
    fn saturated_uniform_channel_keeps_the_fast_path_at_the_max() {
        // A uniform request above the max saturates to a uniform channel at the
        // max — the fast-path key reflects the rates actually sampled.
        let ch = ErrorChannel::uniform(4, 0.9);
        assert_eq!(ch.uniform_rate(), Some(DEPOLARIZING_MAX));
        assert!(ch.saturated());
    }

    #[test]
    fn schedule_channel_tracks_idle_exposure() {
        let m = model(5e-4, 5e-3);
        let ch = ErrorChannel::from_schedule(&m, &[0.0, 5e-3, 5e-2], &[0.0, 5e-3]);
        // Zero idle recovers the base circuit-level rate.
        assert_eq!(ch.data()[0], m.parameters().base_data_error());
        assert_eq!(ch.measurement()[0], m.parameters().base_measurement_error());
        // More idle, more decoherence.
        assert!(ch.data()[1] < ch.data()[2]);
        assert!(ch.measurement()[1] > ch.measurement()[0]);
        // Idle equal to the round latency reproduces the scalar effective rate.
        assert_eq!(ch.data()[1], m.effective_error_rate());
        assert_eq!(ch.measurement()[1], m.effective_measurement_error());
        assert_eq!(ch.uniform_rate(), None);
    }

    #[test]
    fn spec_instantiation_matches_the_model() {
        let m = model(2e-3, 1e-2);
        let uniform = ChannelSpec::Uniform.instantiate(&m, 8, 4);
        assert_eq!(uniform.uniform_rate(), Some(m.effective_error_rate()));

        let biased = ChannelSpec::Biased { meas_ratio: 2.0 }.instantiate(&m, 8, 4);
        assert_eq!(biased.data()[0], m.effective_error_rate());
        assert_eq!(
            biased.measurement()[0],
            (2.0 * m.effective_error_rate()).min(0.75)
        );

        let explicit = ChannelSpec::Explicit(ErrorChannel::uniform(8, 1e-3));
        assert_eq!(explicit.instantiate(&m, 8, 4).uniform_rate(), Some(1e-3));
    }

    #[test]
    #[should_panic(expected = "sized for a different code")]
    fn explicit_spec_rejects_wrong_dimensions() {
        let m = model(2e-3, 0.0);
        let _ = ChannelSpec::Explicit(ErrorChannel::uniform(8, 1e-3)).instantiate(&m, 9, 4);
    }

    #[test]
    fn cache_ids_distinguish_channels() {
        assert_eq!(ChannelSpec::Uniform.cache_id(), "uniform");
        assert_eq!(
            ChannelSpec::Biased { meas_ratio: 2.5 }.cache_id(),
            "biased:2.5"
        );
        let a = ChannelSpec::Explicit(ErrorChannel::uniform(8, 1e-3)).cache_id();
        let b = ChannelSpec::Explicit(ErrorChannel::uniform(8, 2e-3)).cache_id();
        assert_ne!(a, b);
        assert!(a.starts_with("explicit:"));
        // Identical contents digest identically (the reuse guarantee).
        let a2 = ChannelSpec::Explicit(ErrorChannel::uniform(8, 1e-3)).cache_id();
        assert_eq!(a, a2);
    }

    #[test]
    fn digest_is_sensitive_to_every_rate() {
        let base = ErrorChannel::from_rates(vec![1e-3, 2e-3], vec![3e-3]).digest();
        assert_ne!(
            base,
            ErrorChannel::from_rates(vec![1e-3, 2.0000001e-3], vec![3e-3]).digest()
        );
        assert_ne!(
            base,
            ErrorChannel::from_rates(vec![1e-3, 2e-3], vec![4e-3]).digest()
        );
        assert_ne!(
            base,
            ErrorChannel::from_rates(vec![1e-3, 2e-3], Vec::new()).digest()
        );
    }
}
