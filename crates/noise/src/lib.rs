//! Hardware-aware noise models for trapped-ion QCCD memory experiments.
//!
//! The paper (§II-C) combines two error sources:
//!
//! 1. a **base circuit-level model** — depolarizing channels on gates, state
//!    preparation, and measurement, each occurring independently with the physical
//!    error rate `p`;
//! 2. a **decoherence model** — idle errors accumulated over the compiled execution
//!    latency, converted to an effective depolarizing channel with the Pauli
//!    twirling approximation using the decay time `T1` and dephasing time `T2`.
//!
//! Coherence times are parameterized from the physical error rate with a log fit:
//! `p = 10⁻⁴ ↦ 100 s` and `p = 10⁻³ ↦ 10 s`, consistent with present-day trapped-ion
//! devices (the paper assumes the 10–100 s range).
//!
//! # Example
//!
//! ```
//! use noise::{HardwareNoiseModel, NoiseParameters};
//!
//! // A syndrome-extraction round that takes 5 ms on hardware, at p = 5e-4.
//! let model = HardwareNoiseModel::new(NoiseParameters::new(5e-4), 5e-3);
//! assert!(model.effective_error_rate() > model.parameters().physical_error_rate());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod decoherence;
pub mod model;

pub use channel::{ChannelSpec, ErrorChannel};
pub use decoherence::{coherence_time_from_p, pauli_twirl_error, CoherenceTimes};
pub use model::{HardwareNoiseModel, NoiseParameters};
