//! The combined hardware-aware noise model.
//!
//! [`NoiseParameters`] holds the base circuit-level error rates (all defaulting to the
//! single physical error rate `p` as in the paper), and [`HardwareNoiseModel`] couples
//! them with a compiled execution latency to produce the effective per-round error
//! rates used by the memory experiments.

use crate::decoherence::{coherence_time_from_p, pauli_twirl_error, CoherenceTimes};
use serde::{Deserialize, Serialize};

/// Base circuit-level error rates.
///
/// The paper models every operation error as an independent depolarizing channel with
/// probability `p` (the *physical error rate*); the fields are kept separate so that
/// sensitivity studies can vary them independently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParameters {
    /// Two-qubit gate depolarizing probability.
    pub two_qubit_gate: f64,
    /// Single-qubit gate depolarizing probability.
    pub single_qubit_gate: f64,
    /// State-preparation flip probability.
    pub preparation: f64,
    /// Measurement flip probability.
    pub measurement: f64,
    /// The headline physical error rate `p` used for coherence-time parameterization.
    physical: f64,
}

impl NoiseParameters {
    /// Uniform circuit-level noise: every operation fails with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p < 1.0,
            "physical error rate must be in (0,1), got {p}"
        );
        NoiseParameters {
            two_qubit_gate: p,
            single_qubit_gate: p,
            preparation: p,
            measurement: p,
            physical: p,
        }
    }

    /// The headline physical error rate `p`.
    pub fn physical_error_rate(&self) -> f64 {
        self.physical
    }

    /// Returns a copy with a scaled two-qubit gate error (used by ablations).
    pub fn with_two_qubit_gate(mut self, p2: f64) -> Self {
        self.two_qubit_gate = p2;
        self
    }

    /// Returns a copy with a different single-qubit gate error (used by ablations).
    ///
    /// Regression note: this field used to be dead — no effective rate read it, so
    /// single-qubit ablations silently did nothing. It now feeds
    /// [`NoiseParameters::base_data_error`].
    pub fn with_single_qubit_gate(mut self, p1: f64) -> Self {
        self.single_qubit_gate = p1;
        self
    }

    /// Returns a copy with a different state-preparation error (used by ablations).
    ///
    /// Regression note: like `single_qubit_gate`, this field used to be dead; it now
    /// feeds [`NoiseParameters::base_measurement_error`].
    pub fn with_preparation(mut self, pp: f64) -> Self {
        self.preparation = pp;
        self
    }

    /// Returns a copy with a different measurement error.
    pub fn with_measurement(mut self, pm: f64) -> Self {
        self.measurement = pm;
        self
    }

    /// Base circuit-level error rate of a *data* qubit per round: the dominant of
    /// the gate error rates acting on it (two-qubit entangling gates and the
    /// single-qubit basis rotations around them).
    ///
    /// The paper sets every operation error to the same `p`, so at defaults this is
    /// exactly `two_qubit_gate` — numerically identical to the pre-channel model.
    /// Ablations that raise `single_qubit_gate` above `two_qubit_gate` now take
    /// effect instead of being silently ignored.
    pub fn base_data_error(&self) -> f64 {
        self.two_qubit_gate.max(self.single_qubit_gate)
    }

    /// Base circuit-level error rate of an ancilla *measurement* per round: the
    /// dominant of the readout and state-(re)preparation error rates.
    ///
    /// At the paper's uniform defaults this is exactly `measurement`, so the
    /// effective measurement rate is numerically unchanged; `preparation` ablations
    /// now take effect.
    pub fn base_measurement_error(&self) -> f64 {
        self.measurement.max(self.preparation)
    }
}

/// A noise model that couples circuit-level noise with latency-induced decoherence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareNoiseModel {
    parameters: NoiseParameters,
    /// Compiled execution latency of one syndrome-extraction round, in seconds.
    round_latency: f64,
    /// Coherence times derived from the physical error rate (or overridden).
    coherence: CoherenceTimes,
}

impl HardwareNoiseModel {
    /// Builds a model for a round of the given latency (seconds), deriving coherence
    /// times from the physical error rate with the paper's log fit.
    ///
    /// # Panics
    ///
    /// Panics if `round_latency` is negative.
    pub fn new(parameters: NoiseParameters, round_latency: f64) -> Self {
        assert!(round_latency >= 0.0, "latency must be non-negative");
        let t = coherence_time_from_p(parameters.physical_error_rate());
        HardwareNoiseModel {
            parameters,
            round_latency,
            coherence: CoherenceTimes::symmetric(t),
        }
    }

    /// Builds a model with explicitly chosen coherence times.
    pub fn with_coherence(
        parameters: NoiseParameters,
        round_latency: f64,
        coherence: CoherenceTimes,
    ) -> Self {
        assert!(round_latency >= 0.0, "latency must be non-negative");
        HardwareNoiseModel {
            parameters,
            round_latency,
            coherence,
        }
    }

    /// The base circuit-level parameters.
    pub fn parameters(&self) -> &NoiseParameters {
        &self.parameters
    }

    /// The compiled per-round execution latency in seconds.
    pub fn round_latency(&self) -> f64 {
        self.round_latency
    }

    /// The coherence times in use.
    pub fn coherence(&self) -> CoherenceTimes {
        self.coherence
    }

    /// The per-qubit decoherence error probability accumulated over one round
    /// (`p_twirling` in the paper).
    pub fn decoherence_error(&self) -> f64 {
        pauli_twirl_error(self.round_latency, self.coherence)
    }

    /// The effective per-qubit, per-round error rate used by the memory experiments:
    /// `p_eff = p_base + p_twirling`, clamped to 0.75 (the depolarizing maximum).
    ///
    /// `p_base` is [`NoiseParameters::base_data_error`], which equals
    /// `two_qubit_gate` at the paper's uniform defaults.
    pub fn effective_error_rate(&self) -> f64 {
        (self.parameters.base_data_error() + self.decoherence_error()).min(0.75)
    }

    /// Effective measurement error rate for one round: base measurement error
    /// ([`NoiseParameters::base_measurement_error`], which equals `measurement` at
    /// the uniform defaults) plus the ancilla's share of decoherence over the round.
    pub fn effective_measurement_error(&self) -> f64 {
        (self.parameters.base_measurement_error() + self.decoherence_error()).min(0.75)
    }

    /// Returns a copy of this model with a different round latency — convenient for
    /// comparing codesigns under identical base noise.
    pub fn with_round_latency(mut self, latency: f64) -> Self {
        assert!(latency >= 0.0, "latency must be non-negative");
        self.round_latency = latency;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_rate_exceeds_base() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 1e-2);
        assert!(m.effective_error_rate() > 1e-4);
    }

    #[test]
    fn zero_latency_recovers_base_rate() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-3), 0.0);
        assert!((m.effective_error_rate() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn longer_latency_more_error() {
        let p = NoiseParameters::new(5e-4);
        let fast = HardwareNoiseModel::new(p, 1e-3);
        let slow = HardwareNoiseModel::new(p, 4e-3);
        assert!(slow.effective_error_rate() > fast.effective_error_rate());
    }

    #[test]
    fn coherence_derived_from_p() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 1e-3);
        assert!((m.coherence().t1 - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "physical error rate")]
    fn invalid_p_rejected() {
        let _ = NoiseParameters::new(0.0);
    }

    #[test]
    fn with_round_latency_replaces() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 1e-3);
        let m2 = m.with_round_latency(2e-3);
        assert_eq!(m2.round_latency(), 2e-3);
        assert_eq!(m.round_latency(), 1e-3);
    }

    #[test]
    fn effective_rate_clamped() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-3), 1e9);
        assert!(m.effective_error_rate() <= 0.75);
    }

    #[test]
    fn uniform_defaults_keep_legacy_effective_rates() {
        // The four-rate wiring must be numerically invisible at the paper's uniform
        // defaults: base data error is exactly `two_qubit_gate`, base measurement
        // error exactly `measurement`.
        let params = NoiseParameters::new(7e-4);
        assert_eq!(params.base_data_error(), params.two_qubit_gate);
        assert_eq!(params.base_measurement_error(), params.measurement);
        let m = HardwareNoiseModel::new(params, 3e-3);
        assert_eq!(
            m.effective_error_rate(),
            (params.two_qubit_gate + m.decoherence_error()).min(0.75)
        );
        assert_eq!(
            m.effective_measurement_error(),
            (params.measurement + m.decoherence_error()).min(0.75)
        );
    }

    #[test]
    fn single_qubit_gate_knob_is_live() {
        // Regression: `single_qubit_gate` used to be a dead field — raising it did
        // not change any effective rate.
        let p = 5e-4;
        let base = HardwareNoiseModel::new(NoiseParameters::new(p), 1e-3);
        let ablated = HardwareNoiseModel::new(
            NoiseParameters::new(p).with_single_qubit_gate(10.0 * p),
            1e-3,
        );
        assert!(ablated.effective_error_rate() > base.effective_error_rate());
        // Lowering it below the two-qubit rate leaves the dominant rate in charge.
        let lowered = HardwareNoiseModel::new(
            NoiseParameters::new(p).with_single_qubit_gate(p / 10.0),
            1e-3,
        );
        assert_eq!(lowered.effective_error_rate(), base.effective_error_rate());
    }

    #[test]
    fn preparation_knob_is_live() {
        // Regression: `preparation` used to be a dead field.
        let p = 5e-4;
        let base = HardwareNoiseModel::new(NoiseParameters::new(p), 1e-3);
        let ablated =
            HardwareNoiseModel::new(NoiseParameters::new(p).with_preparation(8.0 * p), 1e-3);
        assert!(ablated.effective_measurement_error() > base.effective_measurement_error());
        // Data-qubit rates are unaffected by preparation.
        assert_eq!(ablated.effective_error_rate(), base.effective_error_rate());
    }

    #[test]
    fn two_qubit_ablation_still_shifts_the_data_rate() {
        let p = 5e-4;
        let base = HardwareNoiseModel::new(NoiseParameters::new(p), 0.0);
        let doubled =
            HardwareNoiseModel::new(NoiseParameters::new(p).with_two_qubit_gate(2.0 * p), 0.0);
        assert!((doubled.effective_error_rate() - 2.0 * p).abs() < 1e-15);
        assert!((base.effective_error_rate() - p).abs() < 1e-15);
    }
}
