//! The combined hardware-aware noise model.
//!
//! [`NoiseParameters`] holds the base circuit-level error rates (all defaulting to the
//! single physical error rate `p` as in the paper), and [`HardwareNoiseModel`] couples
//! them with a compiled execution latency to produce the effective per-round error
//! rates used by the memory experiments.

use crate::decoherence::{coherence_time_from_p, pauli_twirl_error, CoherenceTimes};
use serde::{Deserialize, Serialize};

/// Base circuit-level error rates.
///
/// The paper models every operation error as an independent depolarizing channel with
/// probability `p` (the *physical error rate*); the fields are kept separate so that
/// sensitivity studies can vary them independently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParameters {
    /// Two-qubit gate depolarizing probability.
    pub two_qubit_gate: f64,
    /// Single-qubit gate depolarizing probability.
    pub single_qubit_gate: f64,
    /// State-preparation flip probability.
    pub preparation: f64,
    /// Measurement flip probability.
    pub measurement: f64,
    /// The headline physical error rate `p` used for coherence-time parameterization.
    physical: f64,
}

impl NoiseParameters {
    /// Uniform circuit-level noise: every operation fails with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "physical error rate must be in (0,1), got {p}");
        NoiseParameters {
            two_qubit_gate: p,
            single_qubit_gate: p,
            preparation: p,
            measurement: p,
            physical: p,
        }
    }

    /// The headline physical error rate `p`.
    pub fn physical_error_rate(&self) -> f64 {
        self.physical
    }

    /// Returns a copy with a scaled two-qubit gate error (used by ablations).
    pub fn with_two_qubit_gate(mut self, p2: f64) -> Self {
        self.two_qubit_gate = p2;
        self
    }

    /// Returns a copy with a different measurement error.
    pub fn with_measurement(mut self, pm: f64) -> Self {
        self.measurement = pm;
        self
    }
}

/// A noise model that couples circuit-level noise with latency-induced decoherence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareNoiseModel {
    parameters: NoiseParameters,
    /// Compiled execution latency of one syndrome-extraction round, in seconds.
    round_latency: f64,
    /// Coherence times derived from the physical error rate (or overridden).
    coherence: CoherenceTimes,
}

impl HardwareNoiseModel {
    /// Builds a model for a round of the given latency (seconds), deriving coherence
    /// times from the physical error rate with the paper's log fit.
    ///
    /// # Panics
    ///
    /// Panics if `round_latency` is negative.
    pub fn new(parameters: NoiseParameters, round_latency: f64) -> Self {
        assert!(round_latency >= 0.0, "latency must be non-negative");
        let t = coherence_time_from_p(parameters.physical_error_rate());
        HardwareNoiseModel {
            parameters,
            round_latency,
            coherence: CoherenceTimes::symmetric(t),
        }
    }

    /// Builds a model with explicitly chosen coherence times.
    pub fn with_coherence(parameters: NoiseParameters, round_latency: f64, coherence: CoherenceTimes) -> Self {
        assert!(round_latency >= 0.0, "latency must be non-negative");
        HardwareNoiseModel {
            parameters,
            round_latency,
            coherence,
        }
    }

    /// The base circuit-level parameters.
    pub fn parameters(&self) -> &NoiseParameters {
        &self.parameters
    }

    /// The compiled per-round execution latency in seconds.
    pub fn round_latency(&self) -> f64 {
        self.round_latency
    }

    /// The coherence times in use.
    pub fn coherence(&self) -> CoherenceTimes {
        self.coherence
    }

    /// The per-qubit decoherence error probability accumulated over one round
    /// (`p_twirling` in the paper).
    pub fn decoherence_error(&self) -> f64 {
        pauli_twirl_error(self.round_latency, self.coherence)
    }

    /// The effective per-qubit, per-round error rate used by the memory experiments:
    /// `p_eff = p_base + p_twirling`, clamped to 0.75 (the depolarizing maximum).
    pub fn effective_error_rate(&self) -> f64 {
        (self.parameters.two_qubit_gate + self.decoherence_error()).min(0.75)
    }

    /// Effective measurement error rate for one round: base measurement error plus the
    /// ancilla's share of decoherence over the round.
    pub fn effective_measurement_error(&self) -> f64 {
        (self.parameters.measurement + self.decoherence_error()).min(0.75)
    }

    /// Returns a copy of this model with a different round latency — convenient for
    /// comparing codesigns under identical base noise.
    pub fn with_round_latency(mut self, latency: f64) -> Self {
        assert!(latency >= 0.0, "latency must be non-negative");
        self.round_latency = latency;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_rate_exceeds_base() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 1e-2);
        assert!(m.effective_error_rate() > 1e-4);
    }

    #[test]
    fn zero_latency_recovers_base_rate() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-3), 0.0);
        assert!((m.effective_error_rate() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn longer_latency_more_error() {
        let p = NoiseParameters::new(5e-4);
        let fast = HardwareNoiseModel::new(p, 1e-3);
        let slow = HardwareNoiseModel::new(p, 4e-3);
        assert!(slow.effective_error_rate() > fast.effective_error_rate());
    }

    #[test]
    fn coherence_derived_from_p() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 1e-3);
        assert!((m.coherence().t1 - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "physical error rate")]
    fn invalid_p_rejected() {
        let _ = NoiseParameters::new(0.0);
    }

    #[test]
    fn with_round_latency_replaces() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-4), 1e-3);
        let m2 = m.with_round_latency(2e-3);
        assert_eq!(m2.round_latency(), 2e-3);
        assert_eq!(m.round_latency(), 1e-3);
    }

    #[test]
    fn effective_rate_clamped() {
        let m = HardwareNoiseModel::new(NoiseParameters::new(1e-3), 1e9);
        assert!(m.effective_error_rate() <= 0.75);
    }
}
