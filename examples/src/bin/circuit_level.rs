//! Circuit-level validation: run the Pauli-frame simulator on a full noisy
//! syndrome-extraction circuit of the `[[72,12,6]]` BB code, decode the resulting
//! syndromes with BP+OSD, and compare the observed logical failure fraction against
//! the faster effective-error-rate model used by the benchmark harness.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p examples --bin circuit_level [shots]
//! ```

use decoder::bposd::BpOsdDecoder;
use decoder::memory::{logical_error_rate, MemoryConfig};
use decoder::pauli::{CircuitNoise, PauliFrameSimulator};
use qec::codes::bb_72_12_6;
use qec::schedule::parallel_xz_schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shots: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2_000);
    let code = bb_72_12_6()?;
    let schedule = parallel_xz_schedule(&code);
    let p = 2e-3;
    let noise = CircuitNoise::uniform(p);
    let sim = PauliFrameSimulator::new(&code, &schedule, noise);
    let x_decoder = BpOsdDecoder::new(code.hz(), 30);
    let z_decoder = BpOsdDecoder::new(code.hx(), 30);

    let mut rng = StdRng::seed_from_u64(2026);
    let mut failures = 0usize;
    for _ in 0..shots {
        let outcome = sim.simulate_fresh_round(&mut rng);
        // Decode the measured syndromes (single round, so the measured syndrome is
        // used directly) and apply the corrections to the residual data frame.
        let x_corr = x_decoder.decode(&outcome.z_syndrome, p * 4.0).error;
        let z_corr = z_decoder.decode(&outcome.x_syndrome, p * 4.0).error;
        let x_residual: Vec<bool> = outcome
            .frame
            .x_errors
            .iter()
            .zip(&x_corr)
            .map(|(&a, &b)| a ^ b)
            .collect();
        let z_residual: Vec<bool> = outcome
            .frame
            .z_errors
            .iter()
            .zip(&z_corr)
            .map(|(&a, &b)| a ^ b)
            .collect();
        if code.x_error_is_logical(&x_residual) || code.z_error_is_logical(&z_residual) {
            failures += 1;
        }
    }
    let circuit_level_ler = failures as f64 / shots as f64;
    println!("circuit-level Pauli-frame simulation of {code}");
    println!("  physical error rate p = {p:.0e}, {shots} shots");
    println!(
        "  schedule depth: {} timeslices, {} gates",
        schedule.depth(),
        schedule.num_gates()
    );
    println!("  logical failure fraction: {circuit_level_ler:.3e} ({failures} failures)");

    // Compare against the effective-error-rate model with zero extra latency.
    let config = MemoryConfig::with_shots(shots);
    let code_capacity = logical_error_rate(&code, p, 0.0, &config);
    println!(
        "  effective-error-rate model at the same p: {:.3e}",
        code_capacity.ler
    );
    println!(
        "  (circuit-level noise is harsher because every CX propagates faults; the\n   \
         two models bracket the paper's hardware-aware noise model)"
    );
    Ok(())
}
