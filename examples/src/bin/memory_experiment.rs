//! Hardware-aware memory experiment: sweep the physical error rate and print the
//! logical error rate of the baseline grid and of Cyclone for a chosen code — the
//! workload behind Figs. 14 and 15 of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p examples --bin memory_experiment [code] [shots]
//! ```
//!
//! where `code` is one of `bb72`, `bb90`, `bb108`, `bb144`, `hgp100`, `hgp225`
//! (default `bb72`) and `shots` is the Monte-Carlo shot count per point
//! (default 1000).

use cyclone::experiments::ler_comparison;
use decoder::memory::MemoryConfig;
use qec::codes;
use qec::CssCode;

fn code_by_name(name: &str) -> Result<CssCode, Box<dyn std::error::Error>> {
    let code = match name {
        "bb72" => codes::bb_72_12_6()?,
        "bb90" => codes::bb_90_8_10()?,
        "bb108" => codes::bb_108_8_10()?,
        "bb144" => codes::bb_144_12_12()?,
        "hgp100" => codes::hgp_100()?,
        "hgp225" => codes::hgp_225_9_6()?,
        other => return Err(format!("unknown code `{other}`").into()),
    };
    Ok(code)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("bb72");
    let shots: usize = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(1_000);
    let code = code_by_name(name)?;
    let config = MemoryConfig::with_shots(shots);
    let ps = [1e-4, 2e-4, 5e-4, 1e-3, 2e-3];

    println!("memory experiment for {code} with {shots} shots per point\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "p", "baseline LER", "cyclone LER", "baseline lat", "cyclone lat", "improvement"
    );
    let rows = ler_comparison(std::slice::from_ref(&code), &ps, &config);
    for row in rows {
        println!(
            "{:>10.1e} {:>14.3e} {:>14.3e} {:>12.2}ms {:>12.2}ms {:>11.1}x",
            row.p,
            row.baseline_ler.ler,
            row.cyclone_ler.ler,
            row.baseline_latency * 1e3,
            row.cyclone_latency * 1e3,
            row.baseline_ler.ler / row.cyclone_ler.ler
        );
    }
    Ok(())
}
