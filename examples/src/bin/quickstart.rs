//! Quickstart: build a bivariate bicycle code, compile it onto the baseline grid and
//! onto Cyclone, and compare execution time, spacetime cost, and logical error rate.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p examples --bin quickstart
//! ```

use cyclone::experiments::{baseline_round, cyclone_round, ler_for_round};
use decoder::memory::MemoryConfig;
use qccd::timing::OperationTimes;
use qec::codes::bb_72_12_6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let code = bb_72_12_6()?;
    println!("code: {code}");
    println!(
        "  {} data qubits, {} stabilizers (|X|={}, |Z|={}), max weight {}",
        code.num_qubits(),
        code.num_stabilizers(),
        code.num_x_stabilizers(),
        code.num_z_stabilizers(),
        code.max_x_weight()
    );

    let times = OperationTimes::default();
    let baseline = baseline_round(&code, &times);
    let cyclone = cyclone_round(&code, &times);

    println!("\nsyndrome-extraction round:");
    for round in [&baseline, &cyclone] {
        println!(
            "  {:<40} {:>8.2} ms   traps {:>4}  ancillas {:>4}  roadblocks {:>5}",
            round.codesign,
            round.execution_time * 1e3,
            round.num_traps,
            round.num_ancilla,
            round.roadblock_events
        );
    }
    println!(
        "\n  speedup: {:.1}x    spacetime improvement: {:.1}x",
        baseline.execution_time / cyclone.execution_time,
        baseline.spacetime_cost() / cyclone.spacetime_cost()
    );

    let p = 2e-3;
    let config = MemoryConfig::with_shots(1_000);
    let baseline_ler = ler_for_round(&code, &baseline, p, &config);
    let cyclone_ler = ler_for_round(&code, &cyclone, p, &config);
    println!(
        "\nlogical error rate at p = {p:.0e} ({} shots):",
        config.shots
    );
    println!(
        "  baseline: {:.3e}  (latency {:.1} ms)",
        baseline_ler.ler,
        baseline.execution_time * 1e3
    );
    println!(
        "  cyclone:  {:.3e}  (latency {:.1} ms)",
        cyclone_ler.ler,
        cyclone.execution_time * 1e3
    );
    println!(
        "  improvement: {:.1}x lower logical error rate",
        baseline_ler.ler / cyclone_ler.ler
    );
    Ok(())
}
