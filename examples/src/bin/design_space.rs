//! Design-space exploration for the `[[225,9,6]]` hypergraph product code: Cyclone
//! trap-count/capacity sweep (Fig. 13), the software × hardware confusion matrix
//! (Fig. 6), and the spatial/control-overhead summary of §IV.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p examples --bin design_space
//! ```

use cyclone::experiments::{fig6_confusion_matrix, spatial_summary};
use cyclone::{best_configuration, default_trap_counts, trap_capacity_sweep};
use qccd::timing::OperationTimes;
use qec::codes::hgp_225_9_6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let code = hgp_225_9_6()?;
    let times = OperationTimes::default();

    println!("== Cyclone trap/capacity sweep for {code} ==");
    println!("{:>8} {:>10} {:>16}", "traps", "capacity", "exec time (ms)");
    let points = trap_capacity_sweep(&code, &default_trap_counts(&code), &times);
    for p in &points {
        println!(
            "{:>8} {:>10} {:>16.2}",
            p.num_traps,
            p.trap_capacity,
            p.execution_time * 1e3
        );
    }
    if let Some(best) = best_configuration(&points) {
        println!(
            "best configuration: {} traps of capacity {} ({:.2} ms per round)",
            best.num_traps,
            best.trap_capacity,
            best.execution_time * 1e3
        );
    }

    println!("\n== software x hardware confusion matrix (execution time, ms) ==");
    let m = fig6_confusion_matrix(&code, &times);
    println!("{:>24} {:>12} {:>12}", "", "grid", "circle");
    println!(
        "{:>24} {:>12.1} {:>12.1}",
        "static (EJF DAG)",
        m.grid_static * 1e3,
        m.circle_static * 1e3
    );
    println!(
        "{:>24} {:>12.1} {:>12.1}",
        "dynamic (timeslices)",
        m.grid_dynamic * 1e3,
        m.circle_dynamic * 1e3
    );

    println!("\n== spatial / control summary ==");
    let rows = spatial_summary(std::slice::from_ref(&code));
    for r in rows {
        println!("code {}:", r.code);
        println!(
            "  baseline: {:>4} traps, {:>4} junctions, {:>4} DACs, {:>4} ancillas",
            r.baseline_traps, r.baseline_junctions, r.baseline_dacs, r.baseline_ancillas
        );
        println!(
            "  cyclone:  {:>4} traps, {:>4} junctions, {:>4} DACs, {:>4} ancillas",
            r.cyclone_traps, r.cyclone_junctions, r.cyclone_dacs, r.cyclone_ancillas
        );
        println!(
            "  savings:  {:.1}x traps, {:.1}x ancillas, {:.0}x DACs",
            r.baseline_traps as f64 / r.cyclone_traps as f64,
            r.baseline_ancillas as f64 / r.cyclone_ancillas as f64,
            r.baseline_dacs as f64 / r.cyclone_dacs as f64
        );
    }
    Ok(())
}
