//! Example binaries live in `src/bin`; see the README for how to run them.
