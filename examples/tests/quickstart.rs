//! Smoke test pinning the `quickstart` example's end-to-end flow — and with it the
//! paper's headline claim: compiling `[[72,12,6]]` onto Cyclone yields a faster,
//! roadblock-free syndrome-extraction round than the baseline 2D grid.

use cyclone::experiments::{baseline_round, cyclone_round, ler_for_round};
use decoder::memory::MemoryConfig;
use qccd::timing::OperationTimes;
use qec::codes::bb_72_12_6;

#[test]
fn quickstart_flow_runs_end_to_end_with_zero_roadblocks() {
    let code = bb_72_12_6().expect("the named [[72,12,6]] construction is deterministic");
    assert_eq!(code.num_qubits(), 72);

    let times = OperationTimes::default();
    let baseline = baseline_round(&code, &times);
    let cyclone = cyclone_round(&code, &times);

    // The headline claim: Cyclone is roadblock-free; the baseline grid is not.
    assert_eq!(
        cyclone.roadblock_events, 0,
        "Cyclone must never hit a roadblock"
    );
    assert!(
        baseline.roadblock_events > 0,
        "the baseline grid should roadblock"
    );

    // Temporal and spatial wins reported by the quickstart output.
    assert!(cyclone.execution_time > 0.0);
    assert!(
        cyclone.execution_time < baseline.execution_time,
        "Cyclone must be faster"
    );
    assert!(cyclone.spacetime_cost() < baseline.spacetime_cost());
    assert!(cyclone.num_traps < baseline.num_traps);
    assert_eq!(
        cyclone.num_ancilla * 2,
        baseline.num_ancilla,
        "Cyclone halves the ancillas"
    );

    // The LER comparison at the quickstart's operating point must complete and
    // stay deterministic for the fixed seed (fewer shots than the example binary
    // so the suite stays fast).
    let config = MemoryConfig {
        shots: 200,
        bp_iterations: 20,
        threads: 0,
        seed: 0xC1C1_0DE5,
    };
    let p = 2e-3;
    let baseline_ler = ler_for_round(&code, &baseline, p, &config);
    let cyclone_ler = ler_for_round(&code, &cyclone, p, &config);
    assert_eq!(baseline_ler.shots, 200);
    assert_eq!(cyclone_ler.shots, 200);
    assert!(cyclone_ler.ler <= 1.0 && baseline_ler.ler <= 1.0);
    // Rerunning with the same seed reproduces the estimate bit-for-bit.
    let again = ler_for_round(&code, &cyclone, p, &config);
    assert_eq!(again.failures, cyclone_ler.failures);
}
